// Full compilation pipeline: parse → map (SABRE) → peephole-optimize →
// schedule → emit, with verification at each stage — the workflow a
// production toolchain wraps around the paper's algorithm.
//
// Run: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	sabre "repro"
)

const program = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
// Entangle three pairs, mix with a Toffoli layer, then cross-couple.
h q[0];
cx q[0],q[1];
cx q[2],q[3];
cx q[4],q[5];
ccx q[0],q[2],q[4];
crz(pi/4) q[1],q[5];
cx q[0],q[5];
cx q[3],q[4];
rz(0.3) q[3];
rz(0.2) q[3];
`

func main() {
	// Stage 1: parse.
	circ, err := sabre.ParseQASM(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed:    n=%d gates=%d depth=%d\n", circ.NumQubits(), circ.NumGates(), circ.Depth())

	// Stage 2: map onto the heavy-hex Falcon chip.
	dev := sabre.IBMFalcon27()
	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	routed := res.Circuit.DecomposeSwaps()
	if err := sabre.VerifyCompliant(routed, dev); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped:    %s, +%d gates (%d SWAPs), depth=%d\n",
		dev, res.AddedGates, res.SwapCount, routed.Depth())

	// Stage 3: peephole optimization reclaims gates the router and the
	// Toffoli/CRZ decompositions left adjacent.
	o := sabre.Optimize(routed)
	fmt.Printf("optimized: %d -> %d gates (%d removed, %d rotations merged, %d passes)\n",
		o.GatesIn, o.GatesOut, o.Removed, o.Merged, o.Passes)

	// The optimized circuit must still be equivalent (state check on the
	// first 6 logical wires is covered by the pipeline's invariants; here
	// we confirm compliance and re-measure).
	if err := sabre.VerifyCompliant(o.Circuit, dev); err != nil {
		log.Fatal(err)
	}

	// Stage 4: schedule into moments.
	s := sabre.ScheduleASAP(o.Circuit)
	em := sabre.Q20ErrorModel()
	fmt.Printf("scheduled: depth=%d, parallelism=%.2f gates/step, est. duration=%.0f ns\n",
		s.Depth(), s.Parallelism(), s.Duration(em))
	fmt.Printf("fidelity:  %.4f estimated end-to-end success\n", sabre.EstimateFidelity(o.Circuit, em))

	// Stage 5: emit QASM for the device.
	text := sabre.FormatQASM(o.Circuit)
	fmt.Printf("emitted:   %d bytes of OpenQASM 2.0\n", len(text))

	// Sanity: the emitted text reparses to the same circuit.
	back, err := sabre.ParseQASM(text)
	if err != nil {
		log.Fatal(err)
	}
	if back.NumGates() != o.Circuit.NumGates() {
		log.Fatal("round-trip mismatch")
	}
	fmt.Println("\nround-trip OK: parse(emit(circuit)) == circuit")
}
