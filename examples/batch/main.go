// Example batch: compile a mixed workload concurrently with the batch
// engine, then resubmit it to show the result cache and the
// determinism guarantee (same job → byte-identical routed QASM,
// independent of worker count and scheduling).
package main

import (
	"fmt"
	"log"
	"time"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()

	// A batch of heterogeneous jobs. Options are left zero: each job
	// gets the paper's defaults and a seed derived deterministically
	// from its own content, so results do not depend on the order the
	// pool happens to run them in.
	jobs := []sabre.BatchJob{
		{Circuit: sabre.QFT(16), Device: dev, Tag: "qft16"},
		{Circuit: sabre.QFT(10), Device: dev, Tag: "qft10"},
		{Circuit: sabre.GHZ(12), Device: dev, Tag: "ghz12"},
		{Circuit: sabre.Ising(10, 3), Device: dev, Tag: "ising10"},
		{Circuit: sabre.RandomCircuit("mix", 14, 300, 0.6, 3), Device: dev, Tag: "mix14"},
	}

	eng := sabre.NewEngine(sabre.BatchConfig{Workers: 4})
	defer eng.Close()

	start := time.Now()
	results := eng.CompileBatch(jobs)
	fmt.Printf("cold batch: %d jobs in %v\n", len(jobs), time.Since(start).Round(time.Millisecond))
	for _, res := range results {
		if res.Err != nil {
			log.Fatalf("%s: %v", res.Tag, res.Err)
		}
		rep := sabre.MeasureCircuit(res.Circuit)
		fmt.Printf("  %-8s swaps=%-3d g_add=%-4d depth=%-4d hit=%v\n",
			res.Tag, res.SwapCount, res.AddedGates, rep.Depth, res.CacheHit)
	}

	// The same batch again: every job is served from the sharded LRU
	// cache without re-running the search.
	start = time.Now()
	warm := eng.CompileBatch(jobs)
	fmt.Printf("warm batch: %d jobs in %v\n", len(jobs), time.Since(start).Round(time.Microsecond))
	for i, res := range warm {
		if !res.CacheHit {
			log.Fatalf("%s: expected a cache hit", res.Tag)
		}
		if sabre.FormatQASM(res.Circuit) != sabre.FormatQASM(results[i].Circuit) {
			log.Fatalf("%s: warm result differs from cold result", res.Tag)
		}
	}

	st := eng.Stats()
	fmt.Printf("engine: %d jobs, %d compiles, %d cache hits, %d cached entries\n",
		st.Jobs, st.Compiles, st.Hits, st.Cached)
}
