// Package sabre is a Go implementation of SABRE — the SWAP-based
// BidiREctional heuristic search algorithm for the qubit mapping
// problem on NISQ devices (Li, Ding, Xie, ASPLOS 2019).
//
// A quantum circuit assumes any two logical qubits can interact; real
// devices only couple neighbouring physical qubits. This package finds
// an initial logical→physical mapping and inserts SWAP gates so every
// two-qubit gate acts on coupled qubits, minimizing the added gates and
// depth:
//
//	dev  := sabre.IBMQ20Tokyo()
//	circ := sabre.QFT(16)
//	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
//	// res.Circuit is hardware-compliant; res.AddedGates = 3·#SWAPs.
//
// # Pass pipeline
//
// Compilation is structured as an explicit pipeline of passes over a
// shared context — parse, layout, route, basis, peephole, schedule,
// verify — composed by a PassManager with per-pass timing and
// deterministic seeding. The routing stage is the paper's best-of-N
// protocol run on a bounded worker pool (TrialRunner): N independent
// reverse-traversal restarts sharing the device's precomputed distance
// matrices, with the winner selected deterministically, so results are
// byte-identical at any worker count:
//
//	res, err := sabre.CompileN(circ, dev, sabre.DefaultOptions(), 8)
//	pm, _ := sabre.BuildPipeline("route", "peephole", "basis", "verify")
//	pc, err := pm.Compile(ctx, circ, dev, opts)   // pc.Metrics per pass
//
// # Batch compilation
//
// For many circuits, NewEngine builds a concurrent batch-compilation
// engine: a bounded worker pool with a sharded LRU result cache keyed
// by a canonical hash of (circuit structure, device, options), plus
// deterministic per-job seed derivation, so batches compile to
// byte-identical results regardless of worker count or scheduling
// order and repeated workloads hit memory instead of re-running the
// search:
//
//	eng := sabre.NewEngine(sabre.BatchConfig{Workers: 8})
//	defer eng.Close()
//	results := eng.CompileBatch([]sabre.BatchJob{
//		{Circuit: sabre.QFT(16), Device: dev, Tag: "qft16"},
//		{Circuit: sabre.GHZ(12), Device: dev, Tag: "ghz12"},
//	})
//
// The one-shot CompileBatch helper wraps a throwaway engine for
// scripts. cmd/sabred serves the same engine over HTTP/JSON:
//
//	sabred -addr :8037 &
//	curl -X POST --data-binary @circ.qasm 'localhost:8037/compile?device=tokyo'
//
// returns the routed QASM plus metrics (added gates, depth, layouts,
// cache hit) as JSON; GET /devices lists the topology catalogue and
// GET /stats exposes the engine counters. cmd/benchtab's -batch mode
// drives the engine over the full Table II workload suite.
//
// # Async job queue
//
// Long compiles decouple from request lifetimes through the async job
// queue: SubmitAsync returns a job ID immediately, a bounded worker
// pool drains onto the engine, and completion is polled
// (JobStatus/WaitJob), pushed to a webhook URL with bounded retries,
// or both. Jobs cancel promptly at any point — the signal reaches the
// router's SWAP loop at round granularity:
//
//	ae := sabre.NewAsyncEngine(sabre.BatchConfig{}, sabre.JobQueueConfig{})
//	defer ae.Close(context.Background())
//	snap, _ := ae.SubmitAsync(sabre.BatchJob{Circuit: circ, Device: dev}, "")
//	snap, _ = ae.WaitJob(ctx, snap.ID, 30*time.Second) // long-poll
//
// cmd/sabred serves the same queue as its v2 API (POST /jobs,
// GET /jobs/{id}?wait=, DELETE /jobs/{id}) with graceful drain on
// shutdown; cmd/benchtab's -async mode exercises it over the workload
// suite.
//
// The facade re-exports the internal packages' curated surface: circuit
// construction, device topologies, OpenQASM 2.0 I/O, workload
// generators, verification and metrics. Everything is pure Go with no
// dependencies outside the standard library.
package sabre

import (
	"context"
	"io"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/jobqueue"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/qasm"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// Core types, re-exported by alias so values flow freely between the
// facade and the internal packages.
type (
	// Circuit is an ordered gate list over n logical (or, after
	// compilation, physical) qubits.
	Circuit = circuit.Circuit
	// Gate is one operation; see the Kind* constants.
	Gate = circuit.Gate
	// Kind enumerates gate kinds (KindH, KindCX, ...).
	Kind = circuit.Kind
	// Device is an immutable hardware coupling model.
	Device = arch.Device
	// Edge is an undirected coupling between two physical qubits.
	Edge = arch.Edge
	// ErrorModel carries per-gate error rates and durations.
	ErrorModel = arch.ErrorModel
	// Options configures Compile; start from DefaultOptions.
	Options = core.Options
	// Heuristic selects the SWAP-scoring cost function.
	Heuristic = core.Heuristic
	// Result is Compile's outcome.
	Result = core.Result
	// Layout is a logical↔physical qubit bijection.
	Layout = mapping.Layout
	// Report carries gate/depth metrics for a circuit.
	Report = metrics.Report
	// Benchmark describes one entry of the paper's Table II suite.
	Benchmark = workloads.Benchmark
)

// Gate kinds.
const (
	KindH       = circuit.KindH
	KindX       = circuit.KindX
	KindY       = circuit.KindY
	KindZ       = circuit.KindZ
	KindS       = circuit.KindS
	KindSdg     = circuit.KindSdg
	KindT       = circuit.KindT
	KindTdg     = circuit.KindTdg
	KindRX      = circuit.KindRX
	KindRY      = circuit.KindRY
	KindRZ      = circuit.KindRZ
	KindU1      = circuit.KindU1
	KindU2      = circuit.KindU2
	KindU3      = circuit.KindU3
	KindMeasure = circuit.KindMeasure
	KindBarrier = circuit.KindBarrier
	KindCX      = circuit.KindCX
	KindCZ      = circuit.KindCZ
	KindSwap    = circuit.KindSwap
)

// Heuristics.
const (
	HeuristicBasic     = core.HeuristicBasic
	HeuristicLookahead = core.HeuristicLookahead
	HeuristicDecay     = core.HeuristicDecay
)

// --- Circuit construction ---

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// NewNamedCircuit returns an empty named circuit over n qubits.
func NewNamedCircuit(name string, n int) *Circuit { return circuit.NewNamed(name, n) }

// G1 constructs a single-qubit gate of the given kind.
func G1(k Kind, q int, params ...float64) Gate { return circuit.G1(k, q, params...) }

// CX constructs a CNOT gate.
func CX(control, target int) Gate { return circuit.CX(control, target) }

// CZ constructs a controlled-Z gate.
func CZ(a, b int) Gate { return circuit.CZ(a, b) }

// SwapGate constructs a SWAP gate.
func SwapGate(a, b int) Gate { return circuit.Swap(a, b) }

// Toffoli returns the paper Fig. 1 15-gate CCX decomposition.
func Toffoli(c1, c2, target int) []Gate { return circuit.ToffoliDecomposition(c1, c2, target) }

// --- Devices ---

// IBMQ20Tokyo returns the 20-qubit IBM Q20 Tokyo coupling graph used in
// the paper's evaluation (Fig. 2).
func IBMQ20Tokyo() *Device { return arch.IBMQ20Tokyo() }

// IBMQX5 returns the 16-qubit IBM QX5 ladder.
func IBMQX5() *Device { return arch.IBMQX5() }

// LineDevice returns an n-qubit nearest-neighbour chain.
func LineDevice(n int) *Device { return arch.Line(n) }

// RingDevice returns an n-qubit cycle.
func RingDevice(n int) *Device { return arch.Ring(n) }

// GridDevice returns a rows×cols 2-D lattice.
func GridDevice(rows, cols int) *Device { return arch.Grid(rows, cols) }

// FullDevice returns an all-to-all coupled topology on n qubits.
func FullDevice(n int) *Device { return arch.FullyConnected(n) }

// DeviceFromSpec resolves a textual device spec — a catalogue name
// ("tokyo", "qx5", "falcon27") or a parameterized form ("line:16",
// "ring:12", "star:8", "full:6", "grid:4x5", "sycamore:3x3",
// "aspen:2") — the same grammar the sabred daemon accepts.
func DeviceFromSpec(spec string) (*Device, error) { return arch.FromSpec(spec) }

// IBMFalcon27 returns the 27-qubit heavy-hexagon IBM Falcon topology.
func IBMFalcon27() *Device { return arch.IBMFalcon27() }

// RigettiAspen returns an Aspen-style chain of fused octagons.
func RigettiAspen(octagons int) *Device { return arch.RigettiAspen(octagons) }

// Sycamore returns a Google Sycamore-style diagonal lattice.
func Sycamore(rows, cols int) *Device { return arch.Sycamore(rows, cols) }

// NewDevice builds a custom device from an edge list; it validates
// ranges and connectivity.
func NewDevice(name string, n int, edges []Edge) (*Device, error) {
	return arch.New(name, n, edges)
}

// CouplingEdge returns the canonical form of the edge {a, b}.
func CouplingEdge(a, b int) Edge { return arch.NewEdge(a, b) }

// Q20ErrorModel returns the Fig. 2 average chip parameters.
func Q20ErrorModel() ErrorModel { return arch.Q20ErrorModel() }

// NoiseModel carries per-edge CNOT error rates for variability-aware
// routing (set Options.Noise to use it).
type NoiseModel = arch.NoiseModel

// UniformNoise returns a noise model with one error rate everywhere.
func UniformNoise(e float64) *NoiseModel { return arch.UniformNoise(e) }

// RandomNoise draws per-edge error rates log-uniformly from [lo, hi].
func RandomNoise(dev *Device, lo, hi float64, rng *rand.Rand) *NoiseModel {
	return arch.RandomNoise(dev, lo, hi, rng)
}

// --- Calibration snapshots ---

// CalSnapshot is one immutable, versioned device calibration; see
// ApplyCalibration.
type CalSnapshot = arch.CalSnapshot

// ApplyCalibration validates the noise model and installs it as the
// device's current calibration snapshot, bumping the version. Routing
// that opts into the live calibration (BatchJob.UseCalibration, the
// "calibrate" pipeline pass, fleet scheduling) picks up the new
// snapshot immediately, and the version is part of the batch cache
// key — results routed under an older snapshot are never served.
func ApplyCalibration(dev *Device, m *NoiseModel) (*CalSnapshot, error) {
	return dev.ApplyCalibration(m)
}

// DeviceCalibration returns the device's current calibration snapshot,
// or nil if it was never calibrated.
func DeviceCalibration(dev *Device) *CalSnapshot { return dev.Calibration() }

// --- Fleet scheduling ---

// Fleet-scheduler types, re-exported by alias.
type (
	// FleetCandidate is one device offered to the scheduler, with its
	// current queue load.
	FleetCandidate = fleet.Candidate
	// FleetDecision is the outcome of one scheduling pass: the winning
	// device plus every candidate's score row.
	FleetDecision = fleet.Decision
	// FleetScore is one candidate's scoring row.
	FleetScore = fleet.Score
	// FleetWeights tunes the scheduler's error/depth/load terms (zero
	// value = defaults).
	FleetWeights = fleet.Weights
	// FleetScheduler dispatches jobs across a device fleet over a
	// shared batch engine, tracking in-flight load per device.
	FleetScheduler = fleet.Scheduler
)

// ScheduleFleet scores the circuit against every candidate — predicted
// error under each device's live calibration, a routed-depth estimate,
// and queue load — and returns the decision. Deterministic: lowest
// total score wins, ties break by device name then input order.
func ScheduleFleet(circ *Circuit, cands []FleetCandidate, w FleetWeights) (*FleetDecision, error) {
	return fleet.Schedule(circ, cands, w)
}

// NewFleetScheduler builds a load-tracking dispatcher over the fleet.
// The engine is shared, not owned: closing it is the caller's business.
func NewFleetScheduler(eng *Engine, devs []*Device, w FleetWeights) (*FleetScheduler, error) {
	return fleet.NewScheduler(eng, devs, w)
}

// --- Compilation ---

// DefaultOptions returns the paper's §V algorithm configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compile maps circ onto dev with SABRE (random-restart, bidirectional
// traversals) and returns the hardware-compliant physical circuit plus
// accounting. See core.Compile for details.
func Compile(circ *Circuit, dev *Device, opts Options) (*Result, error) {
	return core.Compile(circ, dev, opts)
}

// CompileWithLayout routes from a fixed initial layout (single forward
// traversal, no restarts).
func CompileWithLayout(circ *Circuit, dev *Device, init Layout, opts Options) (*Result, error) {
	return core.CompileWithLayout(circ, dev, init, opts)
}

// CompileContext is Compile with cancellation, honored at trial
// boundaries.
func CompileContext(ctx context.Context, circ *Circuit, dev *Device, opts Options) (*Result, error) {
	return core.CompileContext(ctx, circ, dev, opts)
}

// CompileN routes circ with the paper's best-of-N protocol on a
// bounded worker pool: n independent reverse-traversal trials (seeds
// Seed..Seed+n-1) sharing the device's precomputed distance matrices,
// with the winner selected deterministically (fewest added gates, ties
// by depth, then by seed). The result is byte-identical at any worker
// count and never worse than a single-trial Compile with the same
// seed.
func CompileN(circ *Circuit, dev *Device, opts Options, n int) (*Result, error) {
	return CompileNContext(context.Background(), circ, dev, opts, n)
}

// CompileNContext is CompileN with cancellation, honored at trial
// boundaries.
func CompileNContext(ctx context.Context, circ *Circuit, dev *Device, opts Options, n int) (*Result, error) {
	tr := pipeline.TrialRunner{Trials: n}
	return tr.Route(ctx, circ, dev, opts)
}

// FindInitialMapping runs SABRE's reverse-traversal technique and
// returns only the improved initial layout.
func FindInitialMapping(circ *Circuit, dev *Device, opts Options) (Layout, error) {
	return core.InitialMapping(circ, dev, opts)
}

// IdentityLayout returns the layout mapping logical i to physical i.
func IdentityLayout(n int) Layout { return mapping.Identity(n) }

// RandomLayout returns a uniformly random layout.
func RandomLayout(n int, rng *rand.Rand) Layout { return mapping.Random(n, rng) }

// --- Streaming compilation ---

type (
	// StreamOptions sizes the streaming window, lookahead, and output
	// chunking; zero values take the defaults.
	StreamOptions = core.StreamOptions
	// StreamStats is the accounting block of a streamed compilation,
	// including the gates/sec throughput axis.
	StreamStats = core.StreamStats
	// StreamResult carries the layouts and stats of a streamed route.
	StreamResult = core.StreamResult
	// GateSource feeds gates to the streaming router one at a time.
	GateSource = core.GateSource
	// StreamSink receives routed gates chunk by chunk. The slice is
	// reused between calls — copy anything retained.
	StreamSink = core.StreamSink
	// StreamJob describes one streaming compilation for the batch
	// engine (Engine.CompileStream / Engine.CompileQASMStream).
	StreamJob = batch.StreamJob
	// StreamSpec is the streaming payload of an async job
	// (JobQueue.SubmitStream); chunks leave through the job's webhook.
	StreamSpec = jobqueue.StreamSpec
	// GateScanner parses OpenQASM 2.0 incrementally off a reader; it
	// satisfies GateSource without ever materializing the circuit.
	GateScanner = qasm.GateScanner
	// QASMStreamWriter serializes routed chunks back to OpenQASM 2.0.
	QASMStreamWriter = qasm.StreamWriter
)

// DefaultStreamOptions returns the streaming defaults: a 4096-slot
// window, 256 gates of lookahead, 1024-gate output chunks.
func DefaultStreamOptions() StreamOptions { return core.DefaultStreamOptions() }

// CompileStream routes an arbitrarily long gate stream onto dev in
// O(device + window) memory, emitting routed gates through sink as
// they retire. Semantics are the pinned streaming traversal (single
// trial, seeded initial layout); the output is deterministic and
// byte-identical to the materialized path on the same input. See
// core.RouteStream for the full contract.
func CompileStream(ctx context.Context, src GateSource, dev *Device, opts Options, sopts StreamOptions, sink StreamSink) (*StreamResult, error) {
	return core.RouteStream(ctx, src, dev, opts, sopts, sink, nil)
}

// NewCircuitSource adapts an in-memory circuit to a GateSource.
func NewCircuitSource(c *Circuit) GateSource { return core.NewCircuitSource(c) }

// NewGateScanner parses OpenQASM 2.0 from r one statement at a time.
func NewGateScanner(r io.Reader) *GateScanner { return qasm.NewGateScanner(r) }

// NewQASMStreamWriter writes a streamed program to w: header up
// front, then gates as chunks arrive.
func NewQASMStreamWriter(w io.Writer, numQubits int) *QASMStreamWriter {
	return qasm.NewStreamWriter(w, numQubits)
}

// NewVerifySink wraps a sink with on-the-fly hardware-compliance
// checking: any routed gate on an uncoupled physical pair aborts the
// stream with a positioned error.
func NewVerifySink(inner StreamSink, dev *Device) StreamSink {
	return pipeline.NewVerifySink(inner, dev)
}

// --- Pass pipeline ---

// Pipeline types, re-exported by alias.
type (
	// Pass is one stage of the compilation pipeline.
	Pass = pipeline.Pass
	// PassManager composes passes with per-pass timing/metrics,
	// deterministic seeding, and cancellation.
	PassManager = pipeline.Manager
	// PipelineContext is the shared context passes operate on.
	PipelineContext = pipeline.Ctx
	// PassMetric instruments one executed pass.
	PassMetric = pipeline.PassMetric
	// TrialRunner is the bounded-pool best-of-N routing backend.
	TrialRunner = pipeline.TrialRunner
	// Router abstracts a routing backend (SABRE, greedy, A*,
	// annealing, token swapping, or anything registered at runtime).
	Router = core.Router
)

// --- Router registry ---

// NewRouter resolves a routing backend by registry name: sabre,
// greedy, astar, anneal, tokenswap, or any name added with
// RegisterRouter. The empty name yields the default sabre backend;
// unknown names return an error listing every registered router.
func NewRouter(name string) (Router, error) { return route.New(name) }

// RouterNames returns the registered routing-backend names, sorted.
func RouterNames() []string { return route.Names() }

// RegisterRouter adds a custom routing backend under name, making it
// resolvable everywhere `route:<name>` strings are accepted: pipeline
// construction, batch jobs, the sabred daemon, and the CLI flags. It
// panics on a duplicate or empty name.
func RegisterRouter(name string, factory func() Router) {
	route.Register(name, route.Factory(factory))
}

// CompileAdaptive is CompileN with bandit-style early exit: trials
// stop fanning out once patience consecutive seeds (in seed order)
// fail to improve the incumbent best. The winner is selected over the
// deterministic surviving prefix, so it is byte-identical at any
// worker count and equals exhaustive selection over that same prefix;
// Result.TrialsRun reports the population actually searched.
func CompileAdaptive(ctx context.Context, circ *Circuit, dev *Device, opts Options, maxTrials, patience int) (*Result, error) {
	tr := pipeline.TrialRunner{Trials: maxTrials, Patience: patience}
	return tr.Route(ctx, circ, dev, opts)
}

// BuildPipeline composes a PassManager from pass names: parse, layout,
// route (or route:<name> for any registered backend — sabre, greedy,
// astar, anneal, tokenswap, ...), basis, peephole, schedule, verify.
// Run it with its Compile method:
//
//	pm, _ := sabre.BuildPipeline("route", "peephole", "verify")
//	pc, err := pm.Compile(ctx, circ, dev, opts)
//	// pc.Circuit is the final circuit; pc.Metrics has per-pass data.
func BuildPipeline(passes ...string) (*PassManager, error) {
	return pipeline.Build(passes...)
}

// NewPipeline composes a PassManager from Pass values, for custom
// passes; see ARCHITECTURE.md for how to write one.
func NewPipeline(passes ...Pass) *PassManager { return pipeline.New(passes...) }

// ValidatePostRoutingPasses checks that every name designates a pass
// that is valid after routing (basis, peephole, schedule, verify) —
// what batch jobs and the daemon accept on top of their own route
// stage.
func ValidatePostRoutingPasses(names []string) error { return pipeline.PostRouting(names) }

// --- Batch compilation ---

// Batch-engine types, re-exported by alias.
type (
	// Engine is a concurrent batch-compilation engine; see NewEngine.
	Engine = batch.Engine
	// BatchConfig configures NewEngine (zero value = defaults).
	BatchConfig = batch.Config
	// BatchJob is one circuit/device/options compilation request.
	BatchJob = batch.Job
	// BatchResult is the outcome of one BatchJob.
	BatchResult = batch.Result
	// BatchKey is the canonical cache identity of a BatchJob.
	BatchKey = batch.Key
	// BatchStats snapshots an engine's counters.
	BatchStats = batch.Stats
)

// ErrEngineClosed is reported by jobs submitted after Engine.Close.
var ErrEngineClosed = batch.ErrClosed

// NewEngine starts a batch-compilation engine: a bounded worker pool
// (default GOMAXPROCS workers) with a sharded LRU result cache and
// deterministic per-job seeding. Close it when done.
func NewEngine(cfg BatchConfig) *Engine { return batch.NewEngine(cfg) }

// CompileBatch compiles all jobs concurrently with a throwaway
// default-configured engine and returns results in job order. For
// repeated or overlapping batches, keep a NewEngine instance instead
// so its result cache survives between calls.
func CompileBatch(jobs []BatchJob) []BatchResult {
	eng := batch.NewEngine(batch.Config{})
	defer eng.Close()
	return eng.CompileBatch(jobs)
}

// BatchKeyOf computes the canonical cache key of a job.
func BatchKeyOf(job BatchJob) BatchKey { return batch.KeyOf(job) }

// --- Async job queue ---

// Job-queue types, re-exported by alias.
type (
	// JobQueue is the async job subsystem: Submit returns a job ID
	// immediately, a bounded worker pool drains onto the batch engine,
	// finished jobs are retained for a TTL, and completion can be
	// pushed to a webhook URL with bounded retries.
	JobQueue = jobqueue.Queue
	// JobQueueConfig configures NewJobQueue (zero value = defaults).
	JobQueueConfig = jobqueue.Config
	// JobRequest is one async submission: a BatchJob plus delivery
	// options.
	JobRequest = jobqueue.Request
	// JobSnapshot is a point-in-time view of one async job.
	JobSnapshot = jobqueue.Snapshot
	// JobState enumerates the job lifecycle
	// (queued/running/done/failed/cancelled).
	JobState = jobqueue.State
	// JobQueueStats snapshots the queue counters.
	JobQueueStats = jobqueue.Stats
	// JobWebhookConfig bounds webhook delivery retries.
	JobWebhookConfig = jobqueue.WebhookConfig
	// JobDurability configures the crash-safe job log: set Dir (and a
	// fsync policy) in JobQueueConfig.Durable and open the queue with
	// OpenJobQueue — accepted jobs then survive a process crash and
	// replay on the next boot. Durable submissions must carry
	// JobRequest.DeviceSpec.
	JobDurability = jobqueue.DurabilityConfig
	// JobRecoveryStats reports what a durable queue replayed at boot
	// (JobQueueStats.Recovery).
	JobRecoveryStats = jobqueue.RecoveryStats
	// PanicError is the typed failure a job gets when its pipeline
	// panics: the panic value plus the panicking goroutine's stack.
	// The worker pool survives; only the job fails.
	PanicError = batch.PanicError
)

// Job lifecycle states: queued → running → done | failed | cancelled.
const (
	JobQueued    = jobqueue.StateQueued
	JobRunning   = jobqueue.StateRunning
	JobDone      = jobqueue.StateDone
	JobFailed    = jobqueue.StateFailed
	JobCancelled = jobqueue.StateCancelled
)

// Job-queue errors.
var (
	// ErrJobQueueClosed is reported by submissions after Close.
	ErrJobQueueClosed = jobqueue.ErrClosed
	// ErrJobQueueFull is reported when the backlog is at QueueDepth.
	ErrJobQueueFull = jobqueue.ErrQueueFull
	// ErrJobNotFound is reported for unknown (or TTL-expired) job IDs.
	ErrJobNotFound = jobqueue.ErrNotFound
)

// NewJobQueue starts an async job queue draining onto eng. The engine
// is borrowed: closing the queue leaves it running.
func NewJobQueue(eng *Engine, cfg JobQueueConfig) *JobQueue { return jobqueue.New(eng, cfg) }

// OpenJobQueue starts a job queue like NewJobQueue but surfaces the
// durable job log's boot errors instead of panicking: with
// cfg.Durable.Dir set it replays the log (re-queueing every job that
// was queued or running at the crash) and refuses to open on
// mid-file corruption. Recovery counts land in Stats().Recovery.
func OpenJobQueue(eng *Engine, cfg JobQueueConfig) (*JobQueue, error) {
	return jobqueue.Open(eng, cfg)
}

// AsyncEngine couples a batch engine with an async job queue — the
// in-process form of cmd/sabred's v2 API. Synchronous calls go
// through Batch(); long compiles go through SubmitAsync and are
// polled with JobStatus/WaitJob or pushed to a webhook:
//
//	ae := sabre.NewAsyncEngine(sabre.BatchConfig{}, sabre.JobQueueConfig{})
//	defer ae.Close(context.Background())
//	snap, _ := ae.SubmitAsync(sabre.BatchJob{Circuit: circ, Device: dev}, "")
//	snap, _ = ae.WaitJob(ctx, snap.ID, 30*time.Second)
type AsyncEngine struct {
	eng   *Engine
	queue *JobQueue
}

// NewAsyncEngine starts a batch engine plus a job queue draining onto
// it. Close releases both.
func NewAsyncEngine(cfg BatchConfig, qcfg JobQueueConfig) *AsyncEngine {
	eng := batch.NewEngine(cfg)
	return &AsyncEngine{eng: eng, queue: jobqueue.New(eng, qcfg)}
}

// Batch returns the underlying engine for synchronous compilation.
func (e *AsyncEngine) Batch() *Engine { return e.eng }

// Queue returns the underlying job queue.
func (e *AsyncEngine) Queue() *JobQueue { return e.queue }

// SubmitAsync parks a compilation on the job queue and returns its
// queued snapshot (ID, state) immediately. webhook, when non-empty,
// receives the completion payload via POST with bounded retries.
func (e *AsyncEngine) SubmitAsync(job BatchJob, webhook string) (JobSnapshot, error) {
	return e.queue.Submit(JobRequest{Job: job, Webhook: webhook})
}

// JobStatus returns the job's current snapshot.
func (e *AsyncEngine) JobStatus(id string) (JobSnapshot, error) { return e.queue.Get(id) }

// WaitJob long-polls: it returns as soon as the job is terminal or
// after wait, whichever comes first, with the then-current snapshot.
func (e *AsyncEngine) WaitJob(ctx context.Context, id string, wait time.Duration) (JobSnapshot, error) {
	return e.queue.Wait(ctx, id, wait)
}

// CancelJob cancels a queued job immediately and a running job within
// one SWAP round; terminal jobs are left untouched.
func (e *AsyncEngine) CancelJob(id string) (JobSnapshot, error) { return e.queue.Cancel(id) }

// Jobs lists every retained job, newest first.
func (e *AsyncEngine) Jobs() []JobSnapshot { return e.queue.List() }

// JobStats snapshots the queue counters.
func (e *AsyncEngine) JobStats() JobQueueStats { return e.queue.Stats() }

// Close drains the queue (accepted jobs finish unless ctx expires,
// at which point they are cancelled) and then closes the engine.
func (e *AsyncEngine) Close(ctx context.Context) error {
	err := e.queue.Close(ctx)
	e.eng.Close()
	return err
}

// --- Baselines (for comparison studies) ---

// GreedyCompile routes with the naive shortest-path baseline.
func GreedyCompile(circ *Circuit, dev *Device) (*baseline.GreedyResult, error) {
	return baseline.GreedyCompile(circ, dev)
}

// AStarCompile routes with the Zulehner-style layered A* baseline
// (the paper's BKA).
func AStarCompile(circ *Circuit, dev *Device, opts baseline.AStarOptions) (*baseline.AStarResult, error) {
	return baseline.AStarCompile(circ, dev, opts)
}

// --- QASM I/O ---

// ParseQASM parses OpenQASM 2.0 source.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// ParseQASMFile parses a .qasm file.
func ParseQASMFile(path string) (*Circuit, error) { return qasm.ParseFile(path) }

// WriteQASM serializes a circuit as OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error { return qasm.Write(w, c) }

// FormatQASM returns the QASM text of a circuit.
func FormatQASM(c *Circuit) string { return qasm.Format(c) }

// --- Workloads ---

// QFT returns the n-qubit quantum Fourier transform.
func QFT(n int) *Circuit { return workloads.QFT(n) }

// Ising returns a Trotterized 1-D transverse-field Ising circuit.
func Ising(n, steps int) *Circuit { return workloads.Ising(n, steps) }

// GHZ returns the n-qubit GHZ preparation circuit.
func GHZ(n int) *Circuit { return workloads.GHZ(n) }

// RandomCircuit returns a seeded random benchmark circuit.
func RandomCircuit(name string, n, gates int, cxFrac float64, seed int64) *Circuit {
	return workloads.RandomCircuit(name, n, gates, cxFrac, seed)
}

// Benchmarks returns the paper's 26-benchmark Table II suite.
func Benchmarks() []Benchmark { return workloads.All() }

// BenchmarkByName looks up one Table II benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return workloads.ByName(name) }

// --- Verification & metrics ---

// VerifyCompliant checks every two-qubit gate acts on coupled qubits.
func VerifyCompliant(c *Circuit, dev *Device) error {
	return verify.HardwareCompliant(c.DecomposeSwaps(), dev.Connected)
}

// VerifyRouted checks (exactly, over GF(2)) that a routed CNOT/SWAP
// circuit implements the original under the result's layouts.
func VerifyRouted(orig *Circuit, res *Result) error {
	return verify.CheckRouted(orig, res.Circuit, res.InitialLayout, res.FinalLayout)
}

// VerifyRoutedStates checks equivalence by state-vector simulation
// (arbitrary gate kinds, ≤16 qubits).
func VerifyRoutedStates(orig *Circuit, res *Result, trials int, rng *rand.Rand) error {
	return verify.EquivalentStates(orig, res.Circuit, res.InitialLayout, res.FinalLayout, trials, rng)
}

// SampleCircuit runs c from |0...0⟩ and draws shots full-register
// measurement samples, returning counts keyed by basis-state index.
func SampleCircuit(c *Circuit, shots int, rng *rand.Rand) map[uint64]int {
	return sim.SampleCircuit(c, shots, rng)
}

// Simulate applies the circuit to |0...0⟩ and returns the amplitude
// vector, for inspection in examples and tests (≤24 qubits).
func Simulate(c *Circuit) []complex128 {
	s := sim.NewState(c.NumQubits())
	s.ApplyCircuit(c)
	out := make([]complex128, 1<<uint(c.NumQubits()))
	for b := range out {
		out[b] = s.Amplitude(uint64(b))
	}
	return out
}

// --- Post-processing ---

// OptimizeResult reports what the peephole optimizer did.
type OptimizeResult = opt.Result

// Optimize applies peephole rewrites (self-inverse cancellation,
// rotation merging) until fixpoint, preserving semantics exactly.
func Optimize(c *Circuit) OptimizeResult {
	return opt.Optimize(c, opt.DefaultOptions())
}

// Schedule is an explicit time-step (moments) view of a circuit.
type Schedule = sched.Schedule

// ScheduleASAP returns the as-soon-as-possible schedule; its depth
// equals Circuit.Depth().
func ScheduleASAP(c *Circuit) *Schedule { return sched.ASAP(c) }

// ScheduleALAP returns the as-late-as-possible schedule.
func ScheduleALAP(c *Circuit) *Schedule { return sched.ALAP(c) }

// MeasureCircuit returns gate/depth metrics (SWAPs counted as 3 CNOTs).
func MeasureCircuit(c *Circuit) Report { return metrics.Measure(c) }

// CompareCircuits reports routed against orig (the Table II columns).
func CompareCircuits(orig, routed *Circuit) Report { return metrics.Compare(orig, routed) }

// OverheadBreakdown decomposes routing overhead per kind.
type OverheadBreakdown = metrics.OverheadBreakdown

// BreakdownCircuits computes the overhead decomposition of routed vs
// the original circuit.
func BreakdownCircuits(orig, routed *Circuit) OverheadBreakdown {
	return metrics.Breakdown(orig, routed)
}

// QubitUtilization returns per-wire gate counts (SWAPs decomposed).
func QubitUtilization(c *Circuit) []int { return metrics.QubitUtilization(c) }

// EstimateFidelity returns the first-order success probability of the
// circuit under the error model.
func EstimateFidelity(c *Circuit, em ErrorModel) float64 { return metrics.EstimateFidelity(c, em) }

// EstimateDuration returns the critical-path execution time in ns.
func EstimateDuration(c *Circuit, em ErrorModel) float64 { return metrics.EstimateDuration(c, em) }
