// Command devices inspects the device catalogue: coupling summaries,
// degree histograms, distance diagnostics and Graphviz export.
//
//	devices -list
//	devices -show q20
//	devices -show falcon27 -dot > falcon.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arch"
)

var catalogue = map[string]func() *arch.Device{
	"q20":      arch.IBMQ20Tokyo,
	"qx5":      arch.IBMQX5,
	"falcon27": arch.IBMFalcon27,
	"aspen2":   func() *arch.Device { return arch.RigettiAspen(2) },
	"sycamore": func() *arch.Device { return arch.Sycamore(6, 9) },
	"grid4x5":  func() *arch.Device { return arch.Grid(4, 5) },
	"line16":   func() *arch.Device { return arch.Line(16) },
	"ring16":   func() *arch.Device { return arch.Ring(16) },
	"heavyhex": func() *arch.Device { return arch.HeavyHex(3, 9) },
}

func main() {
	var (
		list = flag.Bool("list", false, "list catalogue devices")
		show = flag.String("show", "", "print details for one device")
		dot  = flag.Bool("dot", false, "emit Graphviz instead of a text summary")
	)
	flag.Parse()

	switch {
	case *list:
		names := make([]string, 0, len(catalogue))
		for n := range catalogue {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			d := catalogue[n]()
			fmt.Printf("%-9s %s\n", n, d)
		}
	case *show != "":
		f, ok := catalogue[*show]
		if !ok {
			fmt.Fprintf(os.Stderr, "devices: unknown device %q (try -list)\n", *show)
			os.Exit(1)
		}
		d := f()
		if *dot {
			fmt.Print(d.DOT(nil, nil))
			return
		}
		fmt.Print(d.AdjacencySummary())
		fmt.Printf("degree histogram: ")
		for _, deg := range d.Degrees() {
			fmt.Printf("%dx deg-%d ", d.DegreeHistogram()[deg], deg)
		}
		fmt.Println()
	default:
		flag.Usage()
		os.Exit(2)
	}
}
