package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQverifyAcceptsValidRouting(t *testing.T) {
	dir := t.TempDir()
	orig := writeFile(t, dir, "orig.qasm", `OPENQASM 2.0;
qreg q[3];
cx q[0],q[1];
`)
	// Routed: q0->0, q1->2; swap wires 2,1 brings q1 next to q0.
	routed := writeFile(t, dir, "routed.qasm", `OPENQASM 2.0;
qreg q[3];
swap q[2],q[1];
cx q[0],q[1];
`)
	if err := run(orig, routed, "0,2,1", "0,1,2", 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestQverifyRejectsWrongLayout(t *testing.T) {
	dir := t.TempDir()
	orig := writeFile(t, dir, "orig.qasm", "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[1];\n")
	routed := writeFile(t, dir, "routed.qasm", "OPENQASM 2.0;\nqreg q[3];\nswap q[2],q[1];\ncx q[0],q[1];\n")
	if err := run(orig, routed, "0,2,1", "0,2,1", 2, 1); err == nil {
		t.Fatal("wrong final layout accepted")
	}
}

func TestQverifyNonlinearUsesSimulation(t *testing.T) {
	dir := t.TempDir()
	orig := writeFile(t, dir, "orig.qasm", `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`)
	// Identity routing: same circuit.
	routed := writeFile(t, dir, "routed.qasm", `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`)
	if err := run(orig, routed, "", "", 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestParseLayout(t *testing.T) {
	if _, err := parseLayout("0,1,2", 3); err != nil {
		t.Fatal(err)
	}
	id, err := parseLayout("", 3)
	if err != nil || id[2] != 2 {
		t.Fatal("identity default broken")
	}
	for _, bad := range []string{"0,1", "0,0,1", "0,1,9", "a,b,c"} {
		if _, err := parseLayout(bad, 3); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestQverifyMissingFiles(t *testing.T) {
	if err := run("/no/such.qasm", "/no/such2.qasm", "", "", 1, 1); err == nil {
		t.Fatal("missing files accepted")
	}
}
