// Command qverify checks that a routed (hardware-compliant) QASM
// circuit implements an original QASM circuit under given initial and
// final layouts — the library's GF(2)/state-vector equivalence checkers
// as a standalone tool, usable against the output of any mapper.
//
//	qverify -orig qft_10.qasm -routed out.qasm \
//	        -init 3,1,0,2,... -final 0,1,2,3,...
//
// Layouts are comma-separated logical→physical lists covering the
// routed circuit's width. CNOT/SWAP-only inputs are checked exactly
// over GF(2) at any size; circuits with other gates are checked by
// state-vector simulation (≤16 qubits).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/verify"
)

func main() {
	var (
		origPath   = flag.String("orig", "", "original QASM file")
		routedPath = flag.String("routed", "", "routed QASM file")
		initStr    = flag.String("init", "", "initial layout: comma-separated l2p")
		finalStr   = flag.String("final", "", "final layout: comma-separated l2p")
		trials     = flag.Int("trials", 3, "random states for the simulation check")
		seed       = flag.Int64("seed", 1, "PRNG seed for the simulation check")
	)
	flag.Parse()
	if *origPath == "" || *routedPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*origPath, *routedPath, *initStr, *finalStr, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "qverify:", err)
		os.Exit(1)
	}
}

func run(origPath, routedPath, initStr, finalStr string, trials int, seed int64) error {
	orig, err := qasm.ParseFile(origPath)
	if err != nil {
		return err
	}
	routed, err := qasm.ParseFile(routedPath)
	if err != nil {
		return err
	}
	n := routed.NumQubits()
	initL, err := parseLayout(initStr, n)
	if err != nil {
		return fmt.Errorf("-init: %w", err)
	}
	finalL, err := parseLayout(finalStr, n)
	if err != nil {
		return fmt.Errorf("-final: %w", err)
	}

	if linear(orig) && linear(routed) {
		if err := verify.CheckRouted(orig, routed, initL, finalL); err != nil {
			return err
		}
		fmt.Println("OK: circuits are GF(2)-equivalent under the given layouts")
		return nil
	}
	if n > verify.MaxSimQubits {
		return fmt.Errorf("non-linear gates present and %d qubits exceeds the %d-qubit simulation limit", n, verify.MaxSimQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	if err := verify.EquivalentStates(orig, routed, initL, finalL, trials, rng); err != nil {
		return err
	}
	fmt.Printf("OK: state-vector equivalent over %d random states\n", trials)
	return nil
}

// parseLayout parses "3,1,0,2"; empty selects the identity.
func parseLayout(s string, n int) ([]int, error) {
	out := make([]int, n)
	if s == "" {
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("layout has %d entries, routed circuit has %d qubits", len(parts), n)
	}
	seen := make([]bool, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		if seen[v] {
			return nil, fmt.Errorf("physical qubit %d repeated", v)
		}
		seen[v] = true
		out[i] = v
	}
	return out, nil
}

func linear(c *circuit.Circuit) bool {
	for _, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindCX, circuit.KindSwap, circuit.KindBarrier, circuit.KindMeasure:
		default:
			return false
		}
	}
	return true
}
