// Command sabredsmoke is the end-to-end daemon smoke test behind
// `make sabred-smoke`: it builds cmd/sabred (optionally with -race),
// boots it on an ephemeral port, and drives the full async lifecycle
// over real HTTP — submit via POST /jobs, long-poll to completion,
// assert the verify pass ran and the output is byte-identical to the
// synchronous POST /compile, push a live calibration mid-run and
// require the warm result cache to miss (and the re-route to report
// the new snapshot version), dispatch a fleet compile and check the
// job ran on the reported winner, receive the webhook, cancel a heavy
// job, list the queue, and finally SIGTERM the daemon and require a
// clean graceful drain (exit 0). Any deviation exits non-zero, so CI
// can run it as a step.
//
// With -crash it instead runs the crash-recovery drill: boot the
// daemon on a durable job log, load it with one running and two
// queued jobs, SIGKILL it mid-compile, restart it on the same log
// directory, and require every job to replay under its original ID
// and finish with output byte-identical to a fresh synchronous
// compile. The restarted daemon then absorbs a scripted router panic
// (job fails with the stack, daemon keeps serving) before the final
// graceful drain.
//
// With -stream it runs the streaming smoke instead: stream a
// million-gate QASM trace (generated on the fly, or -stream-fixture
// for CI's cached copy) through POST /compile?stream=1 without ever
// materializing the circuit, check the trailer accounting and that a
// second identical stream is byte-identical, hold the windowed arm
// equal to the materialized oracle, and run the same compilation as a
// /jobs?stream=1 webhook job whose reassembled chunks match the
// synchronous bytes.
//
//	sabredsmoke [-race] [-crash | -stream [-stream-fixture f | -stream-gates N]] [-timeout 120s]
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/qasm"
	"repro/internal/workloads"
)

var (
	raceFlag      = flag.Bool("race", false, "build the daemon with -race")
	crashFlag     = flag.Bool("crash", false, "run the crash-recovery drill (SIGKILL + replay) instead of the standard lifecycle")
	streamFlag    = flag.Bool("stream", false, "run the streaming smoke (chunked /compile + per-chunk webhook job) instead of the standard lifecycle")
	streamFixture = flag.String("stream-fixture", "", "-stream: path to a pre-generated QASM trace (e.g. genbench -stream-gates output); empty generates a temporary one")
	streamGates   = flag.Int("stream-gates", 1000000, "-stream: gate count of the generated fixture when -stream-fixture is empty")
	timeout       = flag.Duration("timeout", 3*time.Minute, "overall smoke budget")
)

func main() {
	flag.Parse()
	start := time.Now()
	deadline := start.Add(*timeout)

	tmp, err := os.MkdirTemp("", "sabredsmoke")
	if err != nil {
		fail("mkdtemp: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "sabred")
	buildArgs := []string{"build", "-o", bin}
	if *raceFlag {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "./cmd/sabred")
	if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
		fail("build sabred: %v\n%s", err, out)
	}
	step("built sabred (race=%v)", *raceFlag)

	if *crashFlag {
		crashSmoke(bin, deadline)
		fmt.Printf("sabredsmoke: PASS (crash) in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *streamFlag {
		streamSmoke(bin, deadline, tmp, *streamFixture, *streamGates)
		fmt.Printf("sabredsmoke: PASS (stream) in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	daemon := startDaemon(bin)
	defer daemon.kill()

	base := "http://" + daemon.addr
	client := &http.Client{Timeout: 30 * time.Second}

	// Liveness.
	if body := getOK(client, base+"/healthz"); !strings.Contains(string(body), "ok") {
		daemon.fail("healthz = %q", body)
	}
	step("healthz ok at %s", daemon.addr)

	// Webhook sink.
	hookCh := make(chan jobView, 4)
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		daemon.fail("webhook listen: %v", err)
	}
	defer sinkLn.Close()
	go func() {
		_ = http.Serve(sinkLn, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var jv jobView
			if err := json.NewDecoder(r.Body).Decode(&jv); err == nil {
				hookCh <- jv
			}
		}))
	}()
	sinkURL := "http://" + sinkLn.Addr().String()

	// Async submit with verify pass + webhook.
	src := qasm.Format(workloads.QFT(8))
	req := map[string]any{
		"qasm": src, "device": "tokyo", "passes": []string{"verify"},
		"options": map[string]any{"seed": 7}, "webhook": sinkURL,
	}
	resp, body := postJSON(client, base+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		daemon.fail("POST /jobs status %d: %s", resp.StatusCode, body)
	}
	var job jobView
	mustUnmarshal(body, &job, daemon)
	if job.ID == "" || job.State != "queued" {
		daemon.fail("submit response: %s", body)
	}
	step("submitted %s", job.ID)

	// Long-poll to completion.
	for !terminal(job.State) {
		if time.Now().After(deadline) {
			daemon.fail("job %s stuck in %s", job.ID, job.State)
		}
		b := getOK(client, base+"/jobs/"+job.ID+"?wait=2s")
		mustUnmarshal(b, &job, daemon)
	}
	if job.State != "done" || job.Result == nil {
		daemon.fail("job finished as %s (%s)", job.State, job.Error)
	}
	// The verify pass must have actually run inside the job: it aborts
	// the pipeline on any routing-validity error, so its presence in
	// the executed-pass metrics is the success assertion.
	var sawVerify bool
	for _, p := range job.Result.Passes {
		if p.Pass == "verify" {
			sawVerify = true
		}
	}
	if !sawVerify {
		daemon.fail("verify pass missing from executed passes: %+v", job.Result.Passes)
	}
	step("job done, verify pass ran (g_add=%d, depth=%d)", job.Result.AddedGates, job.Result.Depth)

	// Byte-identical to the synchronous endpoint.
	sresp, sbody := postJSON(client, base+"/compile", req)
	if sresp.StatusCode != http.StatusOK {
		daemon.fail("POST /compile status %d: %s", sresp.StatusCode, sbody)
	}
	var sync compileView
	mustUnmarshal(sbody, &sync, daemon)
	if sync.QASM != job.Result.QASM {
		daemon.fail("async QASM differs from synchronous QASM")
	}
	step("async output byte-identical to POST /compile")

	// Live recalibration: a warm cached result must NOT survive a
	// calibration push — the new snapshot version changes the cache key
	// and the re-route runs under the new weights. (Synchronous
	// /compile requests create no jobs, so the list/stats assertions
	// below stay exact.)
	resp, body = postJSON(client, base+"/compile", req)
	var warm compileView
	mustUnmarshal(body, &warm, daemon)
	if resp.StatusCode != http.StatusOK || !warm.CacheHit || warm.CalVersion != 0 {
		daemon.fail("warm pre-calibration compile: status %d cache_hit=%v cal_version=%d, want hit at version 0",
			resp.StatusCode, warm.CacheHit, warm.CalVersion)
	}
	calReq := map[string]any{
		"default": 0.002,
		"edges": []map[string]any{
			{"a": 0, "b": 1, "error": 0.35},
			{"a": 1, "b": 2, "error": 0.30},
		},
	}
	resp, body = postJSON(client, base+"/calibrations/tokyo", calReq)
	var cal struct {
		Version uint64 `json:"version"`
	}
	mustUnmarshal(body, &cal, daemon)
	if resp.StatusCode != http.StatusOK || cal.Version != 1 {
		daemon.fail("calibration push: status %d version %d: %s", resp.StatusCode, cal.Version, body)
	}
	resp, body = postJSON(client, base+"/compile", req)
	var recal compileView
	mustUnmarshal(body, &recal, daemon)
	if resp.StatusCode != http.StatusOK {
		daemon.fail("post-calibration compile status %d: %s", resp.StatusCode, body)
	}
	if recal.CacheHit {
		daemon.fail("stale cached result served after calibration push")
	}
	if recal.CalVersion != 1 {
		daemon.fail("post-calibration cal_version = %d, want 1", recal.CalVersion)
	}
	step("calibration push invalidated the warm cache (cal_version %d)", recal.CalVersion)

	// Fleet dispatch: the daemon picks the device and reports the
	// decision; the compile must land on the reported winner.
	fresp, fbody := postJSON(client, base+"/compile", map[string]any{
		"qasm": src, "fleet": []string{"tokyo", "grid:4x5"},
		"options": map[string]any{"seed": 7},
	})
	var fleetOut struct {
		Device string `json:"device"`
		Fleet  *struct {
			Device string `json:"device"`
			Scores []any  `json:"scores"`
		} `json:"fleet"`
	}
	mustUnmarshal(fbody, &fleetOut, daemon)
	if fresp.StatusCode != http.StatusOK || fleetOut.Fleet == nil ||
		fleetOut.Device != fleetOut.Fleet.Device || len(fleetOut.Fleet.Scores) != 2 {
		daemon.fail("fleet compile: status %d body %s", fresp.StatusCode, fbody)
	}
	step("fleet dispatch chose %s", fleetOut.Fleet.Device)

	// Webhook delivery, same payload as the poll.
	select {
	case hook := <-hookCh:
		if hook.ID != job.ID || hook.State != "done" || hook.Result == nil || hook.Result.QASM != job.Result.QASM {
			daemon.fail("webhook payload mismatch: id=%s state=%s", hook.ID, hook.State)
		}
		step("webhook delivered")
	case <-time.After(time.Until(deadline)):
		daemon.fail("webhook never arrived")
	}

	// Cancel a heavy job.
	heavy := qasm.Format(workloads.RandomCircuit("heavy", 20, 8000, 0.9, 1))
	resp, body = postJSON(client, base+"/jobs", map[string]any{"qasm": heavy, "device": "tokyo", "trials": 64})
	if resp.StatusCode != http.StatusAccepted {
		daemon.fail("heavy submit status %d: %s", resp.StatusCode, body)
	}
	var heavyJob jobView
	mustUnmarshal(body, &heavyJob, daemon)
	dreq, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+heavyJob.ID, nil)
	dresp, err := client.Do(dreq)
	if err != nil {
		daemon.fail("cancel: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		daemon.fail("cancel status %d", dresp.StatusCode)
	}
	for !terminal(heavyJob.State) {
		if time.Now().After(deadline) {
			daemon.fail("cancelled job %s stuck in %s", heavyJob.ID, heavyJob.State)
		}
		b := getOK(client, base+"/jobs/"+heavyJob.ID+"?wait=2s")
		mustUnmarshal(b, &heavyJob, daemon)
	}
	if heavyJob.State != "cancelled" {
		daemon.fail("heavy job finished as %s, want cancelled", heavyJob.State)
	}
	step("cancel honored (job %s)", heavyJob.ID)

	// List + stats sanity.
	var list struct {
		Jobs  []jobView `json:"jobs"`
		Stats struct {
			Submitted int64 `json:"submitted"`
			Done      int64 `json:"done"`
			Cancelled int64 `json:"cancelled"`
		} `json:"stats"`
	}
	mustUnmarshal(getOK(client, base+"/jobs"), &list, daemon)
	if len(list.Jobs) != 2 || list.Stats.Submitted != 2 || list.Stats.Done != 1 || list.Stats.Cancelled != 1 {
		daemon.fail("list/stats mismatch: %d jobs, stats %+v", len(list.Jobs), list.Stats)
	}
	step("list/stats consistent")

	// Graceful drain: SIGTERM must exit 0 after draining.
	if err := daemon.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		daemon.fail("signal: %v", err)
	}
	select {
	case err := <-daemon.waitCh:
		if err != nil {
			daemon.fail("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(time.Until(deadline)):
		daemon.fail("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(daemon.logs(), "drained") {
		daemon.fail("daemon log missing drain confirmation")
	}
	step("graceful drain clean")
	fmt.Printf("sabredsmoke: PASS in %v\n", time.Since(start).Round(time.Millisecond))
}

// crashSmoke is the -crash drill: durable log, SIGKILL mid-compile,
// replay on restart, byte-identical results, panic isolation, drain.
func crashSmoke(bin string, deadline time.Time) {
	logDir, err := os.MkdirTemp("", "sabredsmoke-joblog")
	if err != nil {
		fail("mkdtemp: %v", err)
	}
	defer os.RemoveAll(logDir)

	durableArgs := []string{
		"-job-log", logDir, "-fsync", "always",
		"-job-workers", "1", "-fault-routes",
	}
	daemon := startDaemon(bin, durableArgs...)
	defer daemon.kill()
	base := "http://" + daemon.addr
	client := &http.Client{Timeout: 30 * time.Second}

	// One heavy job to pin the single job worker, two quick ones to
	// sit in the backlog behind it. Every request carries a distinct
	// seed so the replayed results are three distinct circuits.
	heavySrc := qasm.Format(workloads.RandomCircuit("crash-heavy", 20, 5000, 0.9, 1))
	reqs := []map[string]any{
		{"qasm": heavySrc, "device": "tokyo", "trials": 8, "options": map[string]any{"seed": 7}},
		{"qasm": qasm.Format(workloads.QFT(7)), "device": "tokyo", "options": map[string]any{"seed": 11}},
		{"qasm": qasm.Format(workloads.GHZ(8)), "device": "tokyo", "options": map[string]any{"seed": 13}},
	}
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		resp, body := postJSON(client, base+"/jobs", req)
		if resp.StatusCode != http.StatusAccepted {
			daemon.fail("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var jv jobView
		mustUnmarshal(body, &jv, daemon)
		ids[i] = jv.ID
	}
	step("submitted %d durable jobs", len(ids))

	// Wait for the worker to pick up the heavy job so the SIGKILL
	// provably lands mid-compile with a populated backlog.
	for {
		if time.Now().After(deadline) {
			daemon.fail("queue never reached running=1 queued=2")
		}
		var st statsView
		mustUnmarshal(getOK(client, base+"/stats"), &st, daemon)
		if st.Queue.Running == 1 && st.Queue.Queued == 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	step("1 running + 2 queued; sending SIGKILL")

	// SIGKILL: no drain, no goodbye. The job log is all that survives.
	if err := daemon.cmd.Process.Kill(); err != nil {
		daemon.fail("SIGKILL: %v", err)
	}
	<-daemon.waitCh

	// Restart on the same log directory: all three jobs must replay
	// under their original IDs.
	daemon2 := startDaemon(bin, durableArgs...)
	defer daemon2.kill()
	base = "http://" + daemon2.addr

	var st statsView
	mustUnmarshal(getOK(client, base+"/stats"), &st, daemon2)
	rec := st.Queue.Recovery
	if rec == nil || rec.Replayed != 3 || rec.Queued != 2 || rec.Running != 1 || rec.Dropped != 0 {
		daemon2.fail("recovery stats = %+v, want replayed=3 queued=2 running=1", rec)
	}
	if !strings.Contains(daemon2.logs(), "replayed 3 jobs") {
		daemon2.fail("boot log missing replay line:\n%s", daemon2.logs())
	}
	step("restart replayed 3 jobs (2 queued, 1 running at crash)")

	// Every replayed job finishes, and — compilation being
	// deterministic — its result is byte-identical to a fresh
	// synchronous compile of the same request.
	for i, id := range ids {
		var jv jobView
		for {
			if time.Now().After(deadline) {
				daemon2.fail("replayed job %s stuck in %q", id, jv.State)
			}
			mustUnmarshal(getOK(client, base+"/jobs/"+id+"?wait=2s"), &jv, daemon2)
			if terminal(jv.State) {
				break
			}
		}
		if jv.State != "done" || jv.Result == nil {
			daemon2.fail("replayed job %s finished as %s (%s)", id, jv.State, jv.Error)
		}
		resp, body := postJSON(client, base+"/compile", reqs[i])
		if resp.StatusCode != http.StatusOK {
			daemon2.fail("POST /compile for %s: status %d: %s", id, resp.StatusCode, body)
		}
		var sync compileView
		mustUnmarshal(body, &sync, daemon2)
		if sync.QASM != jv.Result.QASM {
			daemon2.fail("replayed job %s QASM differs from synchronous compile", id)
		}
	}
	step("all replayed jobs done, byte-identical to POST /compile")

	// Panic isolation: a job routed through the scripted fault router
	// fails with the panic and its stack while the daemon keeps
	// serving everyone else.
	resp, body := postJSON(client, base+"/jobs", map[string]any{
		"qasm": qasm.Format(workloads.GHZ(6)), "device": "tokyo", "route": "panic",
	})
	if resp.StatusCode != http.StatusAccepted {
		daemon2.fail("panic submit: status %d: %s", resp.StatusCode, body)
	}
	var pj jobView
	mustUnmarshal(body, &pj, daemon2)
	for !terminal(pj.State) {
		if time.Now().After(deadline) {
			daemon2.fail("panic job stuck in %s", pj.State)
		}
		mustUnmarshal(getOK(client, base+"/jobs/"+pj.ID+"?wait=2s"), &pj, daemon2)
	}
	if pj.State != "failed" || !strings.Contains(pj.Error, "panic") || !strings.Contains(pj.Error, "goroutine") {
		daemon2.fail("panic job: state=%s error=%q, want failed with a stack", pj.State, pj.Error)
	}
	if body := getOK(client, base+"/healthz"); !strings.Contains(string(body), "ok") {
		daemon2.fail("daemon unhealthy after panic: %q", body)
	}
	if resp, _ := postJSON(client, base+"/compile", reqs[1]); resp.StatusCode != http.StatusOK {
		daemon2.fail("compile after panic: status %d", resp.StatusCode)
	}
	step("router panic isolated (job failed with stack, daemon healthy)")

	// Graceful drain on the survivor.
	if err := daemon2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		daemon2.fail("signal: %v", err)
	}
	select {
	case err := <-daemon2.waitCh:
		if err != nil {
			daemon2.fail("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(time.Until(deadline)):
		daemon2.fail("daemon did not drain after SIGTERM")
	}
	step("graceful drain clean")
}

// streamSmoke is the -stream phase: boot the daemon and drive the
// streaming API end to end — stream a large generated trace through
// POST /compile?stream=1 (trailer accounting, determinism across two
// runs), hold the windowed arm byte-identical to the materialized
// oracle on a smaller trace, and deliver the same compilation as a
// per-chunk webhook job whose reassembled chunks match the
// synchronous bytes. It boots its own daemon because the standard
// lifecycle asserts exact job counts.
func streamSmoke(bin string, deadline time.Time, tmp, fixture string, gates int) {
	daemon := startDaemon(bin)
	defer daemon.kill()
	base := "http://" + daemon.addr
	// No client timeout: a million-gate stream under -race outlives any
	// fixed per-request budget; the overall deadline still bounds us.
	client := &http.Client{}

	if fixture == "" {
		fixture = filepath.Join(tmp, fmt.Sprintf("stream_%d.qasm", gates))
		f, err := os.Create(fixture)
		if err != nil {
			daemon.fail("fixture create: %v", err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		if err := workloads.WriteRandomQASM(bw, 20, gates, 0.55, 7); err != nil {
			daemon.fail("fixture generate: %v", err)
		}
		if err := bw.Flush(); err != nil {
			daemon.fail("fixture flush: %v", err)
		}
		f.Close()
		step("generated %d-gate fixture (%s)", gates, fixture)
	}
	wantGates, err := countGateLines(fixture)
	if err != nil {
		daemon.fail("fixture scan: %v", err)
	}
	step("fixture %s: %d gates", filepath.Base(fixture), wantGates)

	// streamOnce streams the fixture through the given mode, discards
	// the body through a hash, and returns (sha256, trailers).
	streamOnce := func(mode string) (string, http.Header) {
		f, err := os.Open(fixture)
		if err != nil {
			daemon.fail("open fixture: %v", err)
		}
		defer f.Close()
		req, err := http.NewRequest(http.MethodPost, base+"/compile?stream="+mode+"&device=tokyo", bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			daemon.fail("stream request: %v", err)
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := client.Do(req)
		if err != nil {
			daemon.fail("stream %s: %v", mode, err)
		}
		defer resp.Body.Close()
		h := sha256.New()
		n, err := io.Copy(h, resp.Body)
		if err != nil {
			daemon.fail("stream %s: read: %v", mode, err)
		}
		if resp.StatusCode != http.StatusOK {
			daemon.fail("stream %s: status %d", mode, resp.StatusCode)
		}
		if n == 0 {
			daemon.fail("stream %s: empty body", mode)
		}
		return fmt.Sprintf("%x", h.Sum(nil)), resp.Trailer
	}

	sum1, tr := streamOnce("1")
	gatesIn := trailerInt(daemon, tr, "X-Sabre-Gates-In")
	gatesOut := trailerInt(daemon, tr, "X-Sabre-Gates-Out")
	chunks := trailerInt(daemon, tr, "X-Sabre-Chunks")
	if gatesIn != wantGates {
		daemon.fail("gates-in trailer %d, fixture has %d", gatesIn, wantGates)
	}
	if gatesOut < gatesIn || chunks < 1 {
		daemon.fail("trailers: gates-out %d (in %d), chunks %d", gatesOut, gatesIn, chunks)
	}
	if tr.Get("X-Sabre-Gates-Per-Sec") == "" {
		daemon.fail("gates/sec trailer missing")
	}
	step("windowed stream: %d gates in, %d out, %d chunks, %s gates/s",
		gatesIn, gatesOut, chunks, tr.Get("X-Sabre-Gates-Per-Sec"))

	// Determinism: a second identical stream yields identical bytes.
	sum2, _ := streamOnce("1")
	if sum1 != sum2 {
		daemon.fail("two identical windowed streams differ (%s vs %s)", sum1, sum2)
	}
	step("windowed stream deterministic across runs")

	// Byte parity vs the materialized oracle over HTTP. The oracle arm
	// buffers the whole body, so parity runs on the full fixture only
	// while it fits the daemon's body cap; otherwise CI would need a
	// second small fixture for no extra coverage.
	if fi, err := os.Stat(fixture); err == nil && fi.Size() < 16<<20 {
		msum, _ := streamOnce("materialized")
		if msum != sum1 {
			daemon.fail("windowed stream differs from materialized oracle")
		}
		step("windowed bytes == materialized oracle bytes")
	} else {
		step("fixture over the materialized body cap; skipping HTTP parity arm")
	}

	// Per-chunk webhook job: the reassembled chunks must be the same
	// program the synchronous endpoint streamed.
	sink := newChunkSink()
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		daemon.fail("webhook listen: %v", err)
	}
	defer sinkLn.Close()
	go func() { _ = http.Serve(sinkLn, sink) }()

	small := filepath.Join(tmp, "stream_small.qasm")
	sf, err := os.Create(small)
	if err != nil {
		daemon.fail("small fixture: %v", err)
	}
	if err := workloads.WriteRandomQASM(sf, 18, 30000, 0.55, 11); err != nil {
		daemon.fail("small fixture: %v", err)
	}
	sf.Close()
	body, err := os.ReadFile(small)
	if err != nil {
		daemon.fail("small fixture read: %v", err)
	}

	jurl := base + "/jobs?stream=1&device=tokyo&webhook=http://" + sinkLn.Addr().String()
	resp, err := client.Post(jurl, "text/plain", bytes.NewReader(body))
	if err != nil {
		daemon.fail("stream job submit: %v", err)
	}
	jb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		daemon.fail("stream job submit status %d: %s", resp.StatusCode, jb)
	}
	var job jobView
	mustUnmarshal(jb, &job, daemon)
	for !terminal(job.State) {
		if time.Now().After(deadline) {
			daemon.fail("stream job %s stuck in %s", job.ID, job.State)
		}
		mustUnmarshal(getOK(client, base+"/jobs/"+job.ID+"?wait=2s"), &job, daemon)
	}
	if job.State != "done" {
		daemon.fail("stream job finished as %s (%s)", job.State, job.Error)
	}

	sresp, err := client.Post(base+"/compile?stream=1&device=tokyo", "text/plain", bytes.NewReader(body))
	if err != nil {
		daemon.fail("sync stream: %v", err)
	}
	sbytes, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil || sresp.StatusCode != http.StatusOK {
		daemon.fail("sync stream: status %d err %v", sresp.StatusCode, err)
	}
	got := sink.concat()
	if !bytes.Equal(got, sbytes) {
		daemon.fail("webhook chunks (%d bytes) differ from synchronous stream (%d bytes)", len(got), len(sbytes))
	}
	if sink.count() < 2 {
		daemon.fail("expected multiple webhook chunks, got %d", sink.count())
	}
	step("webhook job delivered %d chunks, reassembly byte-identical to /compile?stream=1", sink.count())

	// Graceful drain.
	if err := daemon.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		daemon.fail("signal: %v", err)
	}
	select {
	case err := <-daemon.waitCh:
		if err != nil {
			daemon.fail("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(time.Until(deadline)):
		daemon.fail("daemon did not drain after SIGTERM")
	}
	step("graceful drain clean")
}

// countGateLines counts the gate statements of a StreamWriter-shaped
// fixture: one statement per line, minus the four header lines.
func countGateLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	lines := 0
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
			lines++
		}
		if err == io.EOF {
			break
		}
		if err != nil && err != bufio.ErrBufferFull {
			return 0, err
		}
	}
	return lines - 4, nil
}

// trailerInt reads one integer HTTP trailer, failing the smoke if it
// is absent or malformed.
func trailerInt(d *daemon, tr http.Header, name string) int {
	v := tr.Get(name)
	if v == "" {
		d.fail("trailer %s missing (got %v)", name, tr)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		d.fail("trailer %s = %q: %v", name, v, err)
	}
	return n
}

// chunkSink collects X-Sabre-Chunk webhook deliveries.
type chunkSink struct {
	mu     sync.Mutex
	chunks map[int][]byte
}

func newChunkSink() *chunkSink { return &chunkSink{chunks: map[int][]byte{}} }

func (c *chunkSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	if h := r.Header.Get("X-Sabre-Chunk"); h != "" {
		if n, err := strconv.Atoi(h); err == nil {
			c.mu.Lock()
			c.chunks[n] = append([]byte(nil), body...)
			c.mu.Unlock()
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *chunkSink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chunks)
}

func (c *chunkSink) concat() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.chunks))
	for id := range c.chunks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out bytes.Buffer
	for _, id := range ids {
		out.Write(c.chunks[id])
	}
	return out.Bytes()
}

// statsView mirrors the /stats fields the crash drill asserts.
type statsView struct {
	Queue struct {
		Queued   int `json:"queued"`
		Running  int `json:"running"`
		Recovery *struct {
			Replayed int `json:"replayed"`
			Queued   int `json:"queued"`
			Running  int `json:"running"`
			Dropped  int `json:"dropped"`
		} `json:"recovery"`
	} `json:"queue"`
}

// jobView mirrors the daemon's jobResponse wire form.
type jobView struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Error  string       `json:"error"`
	Result *compileView `json:"result"`
}

// compileView mirrors the fields of compileResponse the smoke asserts.
type compileView struct {
	AddedGates int    `json:"added_gates"`
	Gates      int    `json:"gates"`
	Depth      int    `json:"depth"`
	QASM       string `json:"qasm"`
	CacheHit   bool   `json:"cache_hit"`
	CalVersion uint64 `json:"cal_version"`
	Passes     []struct {
		Pass string `json:"pass"`
	} `json:"passes"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

// daemon wraps the child process with log capture.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	waitCh chan error

	mu  sync.Mutex
	log bytes.Buffer
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches the built binary on an ephemeral port and
// scrapes the bound address from its log. Extra flags (the crash
// drill's -job-log etc.) are appended to the baseline argument set.
func startDaemon(bin string, extra ...string) *daemon {
	d := &daemon{waitCh: make(chan error, 1)}
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "30s"}, extra...)
	d.cmd = exec.Command(bin, args...)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		fail("stderr pipe: %v", err)
	}
	if err := d.cmd.Start(); err != nil {
		fail("start sabred: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.log.WriteString(line + "\n")
			d.mu.Unlock()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { d.waitCh <- d.cmd.Wait() }()
	select {
	case d.addr = <-addrCh:
	case err := <-d.waitCh:
		fail("sabred exited before listening: %v\n%s", err, d.logs())
	case <-time.After(30 * time.Second):
		d.kill()
		fail("sabred never reported its address\n%s", d.logs())
	}
	return d
}

func (d *daemon) logs() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.String()
}

func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
}

// fail tears the daemon down, dumps its log, and exits non-zero.
func (d *daemon) fail(format string, args ...any) {
	d.kill()
	fmt.Fprintf(os.Stderr, "sabredsmoke: FAIL: "+format+"\n", args...)
	fmt.Fprintf(os.Stderr, "--- daemon log ---\n%s", d.logs())
	os.Exit(1)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sabredsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func step(format string, args ...any) {
	fmt.Printf("sabredsmoke: "+format+"\n", args...)
}

func getOK(client *http.Client, url string) []byte {
	resp, err := client.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func postJSON(client *http.Client, url string, v any) (*http.Response, []byte) {
	payload, err := json.Marshal(v)
	if err != nil {
		fail("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		fail("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("POST %s: read: %v", url, err)
	}
	return resp, body
}

func mustUnmarshal(data []byte, v any, d *daemon) {
	if err := json.Unmarshal(data, v); err != nil {
		d.fail("unmarshal %q: %v", data, err)
	}
}
