// Command genbench exports the reconstructed Table II benchmark suite
// (and optionally the auxiliary workloads) as OpenQASM 2.0 files, so
// external mappers can be compared against this library on identical
// inputs.
//
//	genbench -dir bench_qasm
//	genbench -dir bench_qasm -extras
//
// -stream-gates N additionally writes stream_<N>.qasm, a seeded
// random trace generated and serialized incrementally (bounded
// memory at any N) — the fixture for the streaming-compilation smoke
// and CI's cached million-gate trace. -stream-only skips the Table II
// suite so a fixture-only run stays cheap:
//
//	genbench -dir .stream-fixture -stream-gates 1000000 -stream-only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

func main() {
	var (
		dir          = flag.String("dir", "bench_qasm", "output directory")
		extras       = flag.Bool("extras", false, "also export GHZ/QAOA/Grover workloads")
		streamGates  = flag.Int("stream-gates", 0, "also write stream_<N>.qasm: a seeded random trace of N gates, generated incrementally (any N fits in memory)")
		streamQubits = flag.Int("stream-qubits", 20, "qubit count of the -stream-gates fixture")
		streamSeed   = flag.Int64("stream-seed", 7, "PRNG seed of the -stream-gates fixture")
		streamOnly   = flag.Bool("stream-only", false, "write only the -stream-gates fixture, skipping the benchmark suite")
	)
	flag.Parse()
	if *streamOnly && *streamGates <= 0 {
		fatal(fmt.Errorf("-stream-only needs -stream-gates"))
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	count := 0
	emit := func(c *circuit.Circuit) {
		path := filepath.Join(*dir, c.Name()+".qasm")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		// External tools expect the {1q, CX} basis: decompose SWAPs.
		if err := qasm.Write(f, c.DecomposeSwaps()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		count++
	}

	if !*streamOnly {
		for _, b := range workloads.All() {
			emit(b.Build())
		}
		if *extras {
			emit(workloads.GHZ(16))
			emit(workloads.QAOAMaxCut(14, 2, 0.4, 1))
			emit(workloads.Grover(5, 2))
		}
	}
	if *streamGates > 0 {
		path := filepath.Join(*dir, fmt.Sprintf("stream_%d.qasm", *streamGates))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		if err := workloads.WriteRandomQASM(bw, *streamQubits, *streamGates, 0.55, *streamSeed); err != nil {
			fatal(err)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		count++
	}
	fmt.Printf("wrote %d QASM files to %s\n", count, *dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
