// Command genbench exports the reconstructed Table II benchmark suite
// (and optionally the auxiliary workloads) as OpenQASM 2.0 files, so
// external mappers can be compared against this library on identical
// inputs.
//
//	genbench -dir bench_qasm
//	genbench -dir bench_qasm -extras
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

func main() {
	var (
		dir    = flag.String("dir", "bench_qasm", "output directory")
		extras = flag.Bool("extras", false, "also export GHZ/QAOA/Grover workloads")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	count := 0
	emit := func(c *circuit.Circuit) {
		path := filepath.Join(*dir, c.Name()+".qasm")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		// External tools expect the {1q, CX} basis: decompose SWAPs.
		if err := qasm.Write(f, c.DecomposeSwaps()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		count++
	}

	for _, b := range workloads.All() {
		emit(b.Build())
	}
	if *extras {
		emit(workloads.GHZ(16))
		emit(workloads.QAOAMaxCut(14, 2, 0.4, 1))
		emit(workloads.Grover(5, 2))
	}
	fmt.Printf("wrote %d QASM files to %s\n", count, *dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
