package main

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/workloads"
)

// streamThroughputWorkload is the pseudo-workload name of the
// streaming-compilation rows: not a Table II circuit but a fixed
// seeded synthetic trace routed end to end through the windowed
// streaming router, so the snapshot carries a gates/sec throughput
// axis next to the whole-compilation and score_round rows.
const streamThroughputWorkload = "stream_throughput"

// streamThroughputGates sizes the synthetic trace. Big enough that
// steady-state throughput dominates setup, small enough that three
// samples stay in benchmark-seconds territory.
const streamThroughputGates = 20000

// streamThroughputRouters are the "routers" of the stream_throughput
// rows: the windowed slot-arena path and its materialized-DAG oracle,
// so the gate tracks both the production path and the reference it is
// held byte-identical to.
var streamThroughputRouters = []string{"stream", "stream-materialized"}

// streamThroughputCircuit builds the fixed trace; same seed every
// run, so g_add drift on these rows means the streaming algorithm's
// output changed.
func streamThroughputCircuit(dev *arch.Device) *circuit.Circuit {
	n := 18
	if q := dev.NumQubits(); q < n {
		n = q
	}
	return workloads.RandomCircuit(streamThroughputWorkload, n, streamThroughputGates, 0.55, 7)
}

// countStreamSink discards routed gates, counting them — the rows
// measure routing throughput, not serialization.
type countStreamSink struct{ n int64 }

func (s *countStreamSink) Emit(g []circuit.Gate) error {
	s.n += int64(len(g))
	return nil
}

// measureStreamThroughput benchmarks one full streaming compilation
// of the fixed trace (best of measureSamples runs) and derives the
// throughput columns: gates/sec from ns/op over the known gate count,
// bytes/gate from allocated bytes. The windowed row reuses one warm
// Scratch across iterations, exactly like a long-lived worker.
func measureStreamThroughput(rname string, dev *arch.Device) benchRow {
	circ := streamThroughputCircuit(dev)
	opts := core.DefaultOptions()
	sopts := core.DefaultStreamOptions()
	row := benchRow{Workload: streamThroughputWorkload, Router: rname, Gori: circ.NumGates()}

	route := func(s *core.Scratch) (*core.StreamResult, error) {
		sink := &countStreamSink{}
		switch rname {
		case "stream":
			return core.RouteStream(context.Background(), core.NewCircuitSource(circ), dev, opts, sopts, sink, s)
		case "stream-materialized":
			return core.RouteStreamMaterialized(context.Background(), circ, dev, opts, sopts, sink)
		}
		return nil, fmt.Errorf("unknown stream_throughput router %q", rname)
	}

	scratch := core.NewScratch()
	// Warm route: arena growth and device memo costs land here, and
	// the deterministic result columns come from it.
	res, err := route(scratch)
	if err != nil {
		fatal(fmt.Errorf("%s/%s: %w", streamThroughputWorkload, rname, err))
	}
	row.AddedGates = res.Stats.AddedGates

	row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = sampleMin(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			if _, err := route(scratch); err != nil {
				tb.Fatal(err)
			}
		}
	})
	row.GatesPerSec = float64(streamThroughputGates) * 1e9 / float64(row.NsPerOp)
	row.BytesPerGate = float64(row.BytesPerOp) / float64(streamThroughputGates)
	return row
}
