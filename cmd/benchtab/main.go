// Command benchtab regenerates the paper's evaluation artifacts:
//
//	benchtab -table2              Table II (gate counts + runtimes)
//	benchtab -table2 -type small  one class only
//	benchtab -fig8                Figure 8 (gates/depth trade-off vs δ)
//	benchtab -scaling             §V-B scalability study on QFT
//	benchtab -batch               batch engine over the full suite
//	benchtab -routers sabre,anneal,tokenswap -names qft_10
//	                              cross-heuristic comparison table
//	benchtab -json BENCH.json     perf-trajectory snapshot (workload ×
//	                              router: ns/op, allocs/op, g_add)
//	benchtab -async               async job queue end to end: submit,
//	                              long-poll, webhook, cancel, drain
//	benchtab -compare BENCH_PR10.json -tolerance 25 -sabre-tolerance 15
//	                              CI perf gate: re-measure the baseline
//	                              rows and exit 1 on ns/op regression
//	                              (the tighter -sabre-tolerance applies
//	                              to the zero-alloc sabre and
//	                              score_round rows), allocs/op growth
//	                              on those same rows, or added-gates
//	                              drift
//	benchtab -json BENCH.json -cpuprofile cpu.out -memprofile mem.out
//	                              write pprof profiles of whatever work
//	                              the run performed; flushed even when
//	                              a gate fails, so a regressing row can
//	                              be profiled directly
//	benchtab -fleet tokyo,grid:4x5,falcon27 -names qft_10
//	                              fleet dispatch table: calibrate each
//	                              device with seed-derived random noise,
//	                              score every workload across the fleet
//	                              (internal/fleet), compile on the
//	                              winner under its live snapshot
//
// -quick reduces SABRE to 2 trials for a fast pass; -no-astar skips the
// exponential baseline; -budget caps the A* node budget (the paper's
// memory limit analogue). -batch drives the concurrent compilation
// engine (-workers pool size, -rounds repetitions: round 1 is the cold
// pass, later rounds exercise the warm result cache); it honors -type
// and -max-gori, and -route selects a registry routing backend for the
// jobs. -routers compares registered backends side by side on the same
// workloads through the batch engine; results are deterministic at any
// -workers. -compare honors -names to bound the gate's wall-clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func main() {
	var (
		table2      = flag.Bool("table2", false, "reproduce Table II")
		fig8        = flag.Bool("fig8", false, "reproduce Figure 8 (decay trade-off)")
		scaling     = flag.Bool("scaling", false, "reproduce the §V-B scalability study")
		searchspace = flag.Bool("searchspace", false, "measure the §IV-C1 search-space sizes (E6)")
		optimality  = flag.Bool("optimality", false, "measure the optimality gap on known-optimal instances (E7)")
		class       = flag.String("type", "", "restrict -table2 to one class: small|sim|qft|large")
		quick       = flag.Bool("quick", false, "2 SABRE trials instead of 5")
		noAStar     = flag.Bool("no-astar", false, "skip the A* (BKA) baseline")
		budget      = flag.Int("budget", 0, "A* node budget (0 = default)")
		seed        = flag.Int64("seed", 1, "PRNG seed")
		maxGori     = flag.Int("max-gori", 0, "skip benchmarks with more than this many gates (0 = no limit)")
		names       = flag.String("names", "", "restrict to named benchmarks, comma-separated (e.g. 4mod5-v1_22,qft_10)")
		trials      = flag.Int("trials", 0, "SABRE best-of-N trial count (0 = paper default; overrides -quick)")
		passesFlag  = flag.String("passes", "", "post-routing pipeline passes for -batch jobs, comma-separated: basis|peephole|schedule|verify")
		batchMode   = flag.Bool("batch", false, "drive the concurrent batch engine over the workload suite")
		asyncMode   = flag.Bool("async", false, "drive the async job queue (submit/poll/webhook/cancel) over the workload suite")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "batch engine worker count")
		rounds      = flag.Int("rounds", 2, "batch rounds (first cold, rest warm-cache)")
		routeName   = flag.String("route", "", "routing backend for -batch jobs: sabre|greedy|astar|anneal|tokenswap")
		routersFlag = flag.String("routers", "", "comma-separated routing backends to compare side by side (e.g. sabre,greedy,astar,anneal,tokenswap)")
		jsonFile    = flag.String("json", "", "measure workload × router perf (ns/op, allocs/op, added gates) and write the JSON trajectory snapshot to this file")
		compareFile = flag.String("compare", "", "re-measure the rows of this BENCH_*.json baseline and fail (exit 1) on regression — the CI perf gate")
		tolerance   = flag.Float64("tolerance", 25, "-compare: max ns/op regression in percent before failing")
		sabreTol    = flag.Float64("sabre-tolerance", 15, "-compare: tighter ns/op tolerance (percent) for the zero-alloc sabre and score_round rows")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected work to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file when the run finishes")
		fleetFlag   = flag.String("fleet", "", "comma-separated device specs: calibrate each (seed-derived random noise), score every workload across the fleet, and compile on the winner (e.g. tokyo,grid:4x5,falcon27)")
	)
	flag.Parse()

	if !*table2 && !*fig8 && !*scaling && !*searchspace && !*optimality && !*batchMode && !*asyncMode && *routersFlag == "" && *jsonFile == "" && *compareFile == "" && *fleetFlag == "" {
		flag.Usage()
		os.Exit(2)
	}

	flushProfiles = startProfiles(*cpuProfile, *memProfile)
	defer flushProfiles()

	cfg := exp.DefaultConfig()
	cfg.SabreOpts.Seed = *seed
	if *quick {
		cfg.SabreOpts.Trials = 2
	}
	if *trials > 0 {
		cfg.SabreOpts.Trials = *trials
	}
	if *noAStar {
		cfg.RunAStar = false
	}
	if *budget > 0 {
		cfg.AStarOpts.NodeBudget = *budget
	}

	if *table2 {
		rows, err := exp.RunTable2(selectBenches(*class, *maxGori, *names), cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table II: additional gates and runtime, SABRE vs BKA (A*) and greedy ==")
		fmt.Print(exp.FormatTable2(rows))
	}

	if *fig8 {
		fmt.Println("== Figure 8: circuit depth vs number of gates as δ varies ==")
		for _, name := range []string{"qft_10", "qft_13", "qft_16", "qft_20", "rd84_142", "radd_250", "cycle10_2_110"} {
			b, ok := workloads.ByName(name)
			if !ok {
				continue
			}
			pts, err := exp.RunFig8(b, exp.DefaultFig8Deltas(), cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Print(exp.FormatFig8(name, pts))
		}
	}

	if *scaling {
		fmt.Println("== §V-B scalability: SABRE vs A* on qft_n (Q20 device, n <= 20) ==")
		rows, err := exp.RunScalingQFT([]int{4, 6, 8, 10, 12, 14, 16, 18, 20}, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(exp.FormatScaling(rows))
	}

	if *searchspace {
		fmt.Println("== §IV-C1 search space: SABRE candidates per step vs device size ==")
		rows, err := exp.RunSearchSpace([]int{3, 4, 5, 6, 7}, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(exp.FormatSearchSpace(rows))
	}

	if *batchMode {
		// Let the engine derive per-job seeds from -seed (as BaseSeed)
		// instead of giving every job the same literal seed.
		opts := cfg.SabreOpts
		opts.Seed = 0
		runBatch(selectBenches(*class, *maxGori, *names), cfg.Device, opts, *routeName, splitPasses(*passesFlag), *workers, *rounds, *seed)
	}

	if *asyncMode {
		opts := cfg.SabreOpts
		opts.Seed = 0
		runAsync(selectBenches(*class, *maxGori, *names), cfg.Device, opts, *routeName, splitPasses(*passesFlag), *workers, *seed)
	}

	if *routersFlag != "" && *jsonFile == "" {
		runRouters(selectBenches(*class, *maxGori, *names), cfg.Device, cfg.SabreOpts, splitPasses(*routersFlag), splitPasses(*passesFlag), *workers, *seed)
	}

	if *fleetFlag != "" {
		opts := cfg.SabreOpts
		runFleet(selectBenches(*class, *maxGori, *names), splitPasses(*fleetFlag), opts, *workers, *seed)
	}

	if *compareFile != "" {
		runCompare(*compareFile, *tolerance, *sabreTol, *names)
	}

	if *jsonFile != "" {
		benches := selectBenches(*class, *maxGori, *names)
		if *names == "" && *class == "" && *maxGori == 0 {
			// Default trajectory set: one row per workload class plus
			// the scaling stress cases, capped so a snapshot stays
			// around a minute.
			benches = selectBenches("", 0, strings.Join(benchJSONDefault, ","))
		}
		routers := splitPasses(*routersFlag)
		if len(routers) == 0 {
			routers = []string{"sabre", "sabre-exhaustive", "greedy"}
		}
		runBenchJSON(*jsonFile, benches, cfg.Device, cfg.SabreOpts, routers)
	}

	if *optimality {
		fmt.Println("== E7 optimality gap on known-optimal (QUEKO-style) instances, Q20 ==")
		rows, err := exp.RunOptimalityGap(400, []int64{1, 2, 3, 4, 5, 6, 7, 8}, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(exp.FormatOptimality(rows))
	}
}

// selectBenches applies the shared -type/-max-gori/-names filters to
// the Table II suite, exiting on an unknown class or benchmark name.
// -type and -names are mutually exclusive: silently intersecting them
// would make one filter look ignored.
func selectBenches(class string, maxGori int, names string) []workloads.Benchmark {
	if class != "" && names != "" {
		fmt.Fprintln(os.Stderr, "benchtab: -type and -names are mutually exclusive")
		os.Exit(1)
	}
	benches := workloads.All()
	if class != "" {
		benches = workloads.ByClass(workloads.Class(class))
		if len(benches) == 0 {
			fmt.Fprintf(os.Stderr, "benchtab: unknown class %q\n", class)
			os.Exit(1)
		}
	}
	if names != "" {
		var kept []workloads.Benchmark
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			b, ok := workloads.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown benchmark %q\n", name)
				os.Exit(1)
			}
			kept = append(kept, b)
		}
		benches = kept
	}
	if maxGori > 0 {
		var kept []workloads.Benchmark
		for _, b := range benches {
			if b.Gori <= maxGori {
				kept = append(kept, b)
			}
		}
		benches = kept
	}
	return benches
}

// splitPasses parses the -passes flag value.
func splitPasses(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runBatch compiles the whole benchmark list through the concurrent
// engine for the requested number of rounds on one shared engine.
// Round 1 is the cold pass (every job runs the SABRE search); later
// rounds replay the same jobs and are served by the result cache,
// printing the throughput gap between the two regimes. Requested
// post-routing passes run inside each job; a failing verify pass
// fails the run (exit 1).
func runBatch(benches []workloads.Benchmark, dev *arch.Device, opts core.Options, routeName string, passes []string, workers, rounds int, seed int64) {
	eng := batch.NewEngine(batch.Config{Workers: workers, BaseSeed: seed})
	defer eng.Close()

	jobs := make([]batch.Job, len(benches))
	for i, b := range benches {
		jobs[i] = batch.Job{Circuit: b.Build(), Device: dev, Options: opts, Route: routeName, Passes: passes, Tag: b.Name}
	}

	routeStage := "route"
	if routeName != "" {
		routeStage = "route:" + routeName
	}
	fmt.Printf("== batch engine: %d jobs x %d rounds, %d workers, device %s, passes %v ==\n",
		len(jobs), rounds, eng.Workers(), dev.Name(), append([]string{routeStage}, passes...))
	for round := 1; round <= rounds; round++ {
		start := time.Now()
		results := eng.CompileBatch(jobs)
		elapsed := time.Since(start)

		var addedTotal, hits int
		for _, res := range results {
			if res.Err != nil {
				fatal(fmt.Errorf("%s: %w", res.Tag, res.Err))
			}
			addedTotal += res.AddedGates
			if res.CacheHit {
				hits++
			}
		}
		if round == 1 {
			fmt.Printf("%-16s %6s %6s %7s %7s\n", "benchmark", "g_ori", "g_add", "depth", "ms")
			for i, res := range results {
				rep := metrics.Compare(jobs[i].Circuit, res.Final)
				fmt.Printf("%-16s %6d %6d %7d %7.1f\n",
					res.Tag, rep.RefGates, res.AddedGates, rep.Depth,
					float64(res.Elapsed.Nanoseconds())/1e6)
			}
		}
		fmt.Printf("round %d: %d jobs in %v (%.1f jobs/s), %d cache hits, g_add total %d\n",
			round, len(results), elapsed.Round(time.Millisecond),
			float64(len(results))/elapsed.Seconds(), hits, addedTotal)
	}
	st := eng.Stats()
	fmt.Printf("engine: %d jobs, %d compiles, %d hits, %d shared, %d cached\n",
		st.Jobs, st.Compiles, st.Hits, st.Shared, st.Cached)
}

// runRouters compares routing backends side by side: every benchmark
// is compiled once per backend through one shared batch engine, and
// the table reports added gates (and decomposed depth) per backend.
// Jobs carry explicit per-router names into the cache key, and seeds
// derive from job content, so the table is deterministic at any
// -workers.
func runRouters(benches []workloads.Benchmark, dev *arch.Device, opts core.Options, routers, passes []string, workers int, seed int64) {
	if len(routers) == 0 || len(benches) == 0 {
		fatal(fmt.Errorf("-routers needs at least one router and one benchmark"))
	}
	opts.Seed = 0 // content-derived seeds, reproducible at any worker count
	eng := batch.NewEngine(batch.Config{Workers: workers, BaseSeed: seed})
	defer eng.Close()

	jobs := make([]batch.Job, 0, len(benches)*len(routers))
	for _, b := range benches {
		circ := b.Build()
		for _, r := range routers {
			jobs = append(jobs, batch.Job{Circuit: circ, Device: dev, Options: opts, Route: r, Passes: passes, Tag: b.Name + "/" + r})
		}
	}
	start := time.Now()
	results := eng.CompileBatch(jobs)
	elapsed := time.Since(start)

	fmt.Printf("== router comparison: %d benchmarks x %v, device %s, %d workers ==\n",
		len(benches), routers, dev.Name(), eng.Workers())
	fmt.Println("   (per router: g_add = added gates, depth = decomposed output depth)")
	fmt.Printf("%-16s %6s", "benchmark", "g_ori")
	for _, r := range routers {
		fmt.Printf(" %9s %6s", r, "depth")
	}
	fmt.Println()
	totals := make([]int, len(routers))
	for bi, b := range benches {
		fmt.Printf("%-16s %6d", b.Name, metrics.Measure(jobs[bi*len(routers)].Circuit).Gates)
		for ri := range routers {
			res := results[bi*len(routers)+ri]
			if res.Err != nil {
				fatal(fmt.Errorf("%s: %w", res.Tag, res.Err))
			}
			rep := metrics.Compare(jobs[bi*len(routers)+ri].Circuit, res.Final)
			fmt.Printf(" %9d %6d", res.AddedGates, rep.Depth)
			totals[ri] += res.AddedGates
		}
		fmt.Println()
	}
	fmt.Printf("%-16s %6s", "total g_add", "")
	for ri := range routers {
		fmt.Printf(" %9d %6s", totals[ri], "")
	}
	fmt.Printf("\n%d jobs in %v\n", len(results), elapsed.Round(time.Millisecond))
}

// benchJSONDefault is the workload set a bare `benchtab -json FILE`
// measures: one representative row per Table II class plus the largest
// rows, so the trajectory tracks both the common case and the stress
// case.
var benchJSONDefault = []string{
	"4mod5-v1_22", "ising_model_13", "qft_10", "qft_16", "qft_20",
	"rd84_142", "rd84_253", "9symml_195",
}

// benchRow is one (workload, router) measurement of the perf
// trajectory snapshot.
type benchRow struct {
	Workload    string  `json:"workload"`
	Router      string  `json:"router"`
	Gori        int     `json:"g_ori"`
	NsPerOp     int64   `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AddedGates  int     `json:"g_add"`
	Depth       int     `json:"depth"`
	TrialsRun   int     `json:"trials_run"`
	AvgCands    float64 `json:"avg_candidates"`
	// Streaming throughput columns, set only on the stream_throughput
	// pseudo-workload rows.
	GatesPerSec  float64 `json:"gates_per_sec,omitempty"`
	BytesPerGate float64 `json:"bytes_per_gate,omitempty"`
}

// benchSnapshot is the file layout of BENCH_*.json: enough environment
// detail to interpret a future diff, plus the rows.
type benchSnapshot struct {
	Device    string     `json:"device"`
	GoVersion string     `json:"go_version"`
	GoMaxProc int        `json:"gomaxprocs"`
	Trials    int        `json:"trials"`
	Rows      []benchRow `json:"rows"`
}

// runBenchJSON measures every workload × router combination with the
// testing package's benchmark harness (best of several runs, per-metric
// minima — see sampleMin) and writes the snapshot to file. The pseudo-router "sabre-exhaustive" is the sabre backend with
// Options.ExhaustiveScoring set — the pre-delta-scoring reference —
// kept in the trajectory so regressions of the incremental scorer show
// up as a shrinking gap. Every snapshot additionally carries one
// "score_round" pseudo-workload row per scoring engine — the isolated
// SWAP-selection round of core.ScoreRoundProbe, the same fixture
// BenchmarkScoreRound uses — so the hot path is gated at microbenchmark
// granularity, not only through whole-compilation rows; and one
// "stream_throughput" row per streaming path (windowed and the
// materialized oracle), carrying the gates/sec and bytes/gate axes of
// the streaming compiler.
func runBenchJSON(file string, benches []workloads.Benchmark, dev *arch.Device, opts core.Options, routers []string) {
	snap := benchSnapshot{
		Device:    dev.Name(),
		GoVersion: runtime.Version(),
		GoMaxProc: runtime.GOMAXPROCS(0),
		Trials:    opts.Trials,
	}
	if snap.Trials == 0 {
		snap.Trials = core.DefaultOptions().Trials
	}
	fmt.Printf("== perf trajectory: %d workloads x %v -> %s ==\n", len(benches), routers, file)
	for _, b := range benches {
		for _, rname := range routers {
			row := measureRow(b, dev, opts, rname)
			snap.Rows = append(snap.Rows, row)
			fmt.Printf("%-16s %-17s %12d ns/op %8d allocs/op %7d g_add\n",
				row.Workload, row.Router, row.NsPerOp, row.AllocsPerOp, row.AddedGates)
		}
	}
	for _, engine := range scoreRoundEngines {
		row := measureScoreRound(engine)
		snap.Rows = append(snap.Rows, row)
		fmt.Printf("%-16s %-17s %12d ns/op %8d allocs/op %7d g_add\n",
			row.Workload, row.Router, row.NsPerOp, row.AllocsPerOp, row.AddedGates)
	}
	for _, rname := range streamThroughputRouters {
		row := measureStreamThroughput(rname, dev)
		snap.Rows = append(snap.Rows, row)
		fmt.Printf("%-16s %-17s %12d ns/op %8d allocs/op %7d g_add %11.0f gates/s\n",
			row.Workload, row.Router, row.NsPerOp, row.AllocsPerOp, row.AddedGates, row.GatesPerSec)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(file, data, 0o644); err != nil {
		fatal(err)
	}
}

// flushProfiles stops the CPU profile and writes the heap profile, if
// either was requested. fatal routes through it so an exit-1 path — a
// failing perf gate is exactly the run one wants to profile — still
// yields complete profiles.
var flushProfiles = func() {}

// startProfiles starts the optional CPU profile and returns the
// idempotent flush that stops it and writes the optional heap profile.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			return
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	flushProfiles()
	os.Exit(1)
}
