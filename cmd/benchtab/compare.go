package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/route"
	"repro/internal/workloads"
)

// measureSamples is how many independent benchmark runs back each
// row; the row keeps the per-metric minimum across them.
const measureSamples = 3

// sampleMin benchmarks fn measureSamples times (each through the
// testing package's harness, so the numbers mean exactly what
// `go test -bench` reports) and returns the per-metric minima. A
// single one-second sample of a multi-millisecond benchmark can swing
// ±15-35% on a loaded machine — enough to flake the tightened gate —
// while the minimum is a stable estimate of the code's true cost;
// allocs/op additionally rounds total/N differently run to run, so
// its minimum removes a ±1 flicker on the strict rows.
func sampleMin(fn func(tb *testing.B)) (nsOp, allocsOp, bytesOp int64) {
	for k := 0; k < measureSamples; k++ {
		br := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			fn(tb)
		})
		if k == 0 || br.NsPerOp() < nsOp {
			nsOp = br.NsPerOp()
		}
		if k == 0 || br.AllocsPerOp() < allocsOp {
			allocsOp = br.AllocsPerOp()
		}
		if k == 0 || br.AllocedBytesPerOp() < bytesOp {
			bytesOp = br.AllocedBytesPerOp()
		}
	}
	return nsOp, allocsOp, bytesOp
}

// measureRow benchmarks one workload × router combination (best of
// measureSamples runs). The pseudo-router "sabre-exhaustive" is the
// sabre backend with Options.ExhaustiveScoring set — the
// pre-delta-scoring reference kept in the trajectory so regressions
// of the incremental scorer show up as a shrinking gap.
func measureRow(b workloads.Benchmark, dev *arch.Device, opts core.Options, rname string) benchRow {
	circ := b.Build()
	ropts := opts
	backend := rname
	if rname == "sabre-exhaustive" {
		backend = "sabre"
		ropts.ExhaustiveScoring = true
	}
	router, err := route.New(backend)
	if err != nil {
		fatal(err)
	}
	// One warm route before timing: lazily-built shared state (the
	// device's memoized distance matrices, mostly) is paid here, not
	// inside the first sample, and the result columns come from it.
	res, routeErr := router.Route(context.Background(), circ, dev, ropts)
	if routeErr != nil {
		fatal(fmt.Errorf("%s/%s: %w", b.Name, rname, routeErr))
	}
	row := benchRow{
		Workload:   b.Name,
		Router:     rname,
		Gori:       circ.NumGates(),
		AddedGates: res.AddedGates,
		Depth:      res.Circuit.DecomposeSwaps().Depth(),
		TrialsRun:  res.TrialsRun,
		AvgCands:   res.Stats.AvgCandidates(),
	}
	row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = sampleMin(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			if _, err := router.Route(context.Background(), circ, dev, ropts); err != nil {
				routeErr = err
				tb.Fatal(err)
			}
		}
	})
	// tb.Fatal only aborts the benchmark function; surface the
	// failure here.
	if routeErr != nil {
		fatal(fmt.Errorf("%s/%s: %w", b.Name, rname, routeErr))
	}
	return row
}

// scoreRoundWorkload is the pseudo-workload name of the isolated
// SWAP-selection-round rows: not a circuit from the Table II suite but
// core.ScoreRoundProbe, the steady-state round fixture shared with
// BenchmarkScoreRound and the in-package alloc guard.
const scoreRoundWorkload = "score_round"

// scoreRoundEngines are the "routers" of the score_round rows: one per
// scoring engine, so the snapshot tracks the bitset default, the delta
// oracle and the exhaustive reference at microbenchmark granularity.
var scoreRoundEngines = []string{"bitset", "delta", "exhaustive"}

// measureScoreRound benchmarks one steady-state SWAP-selection round
// under the named scoring engine. The whole-compilation columns
// (g_ori, g_add, depth, trials) are zero: the probe never applies the
// winning SWAP, so there is no routed output to measure.
func measureScoreRound(engine string) benchRow {
	var scoring core.Scoring
	switch engine {
	case "bitset":
		scoring = core.ScoringBitset
	case "delta":
		scoring = core.ScoringDelta
	case "exhaustive":
		scoring = core.ScoringExhaustive
	default:
		fatal(fmt.Errorf("unknown score_round engine %q", engine))
	}
	p := core.NewScoreRoundProbe(scoring)
	row := benchRow{Workload: scoreRoundWorkload, Router: engine}
	row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = sampleMin(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			p.ScoreRound()
		}
	})
	return row
}

// zeroAllocRouter reports whether a router's rows fall under the
// strict no-allocation-growth gate. The sabre backends' allocs/op is
// a fixed per-trial setup cost — the steady-state SWAP round is
// zero-alloc (PR 4's TestScoreRoundZeroAllocs) — so any growth means
// an allocation crept back into the loop and scales with circuit
// size. The baselines (greedy, astar) allocate proportionally to
// work and only get the ns/op tolerance.
func zeroAllocRouter(name string) bool {
	return name == "sabre" || name == "sabre-exhaustive"
}

// strictRow reports whether a baseline row gets the hot-path
// treatment: the tighter -sabre-tolerance on ns/op and the strict
// no-allocation-growth gate. That is every sabre-backed compilation
// row, every score_round row (zero-alloc by construction; any alloc
// there is a hot-loop leak regardless of engine), and every
// stream_throughput row — the streaming hot loop is alloc-free on a
// warm Scratch, so allocation growth there is a leak too.
func strictRow(b benchRow) bool {
	return b.Workload == scoreRoundWorkload ||
		b.Workload == streamThroughputWorkload ||
		zeroAllocRouter(b.Router)
}

// runCompare is the CI perf-regression gate: re-measure every row of
// a committed BENCH_*.json baseline on this machine/toolchain and
// fail (exit 1) when the perf trajectory regresses —
//
//   - ns/op above baseline by more than `tolerance` percent — or by
//     more than the tighter `sabreTol` percent on the strict rows
//     (sabre-backed compilations, the score_round microbenchmark, and
//     the stream_throughput streaming rows);
//   - any allocs/op growth on those same strict rows;
//   - any added-gates drift (routing is deterministic: a changed
//     g_add means the algorithm's output changed, not just its speed).
//
// `names` optionally restricts the gate to a comma-separated workload
// subset (CI uses this to keep the gate's wall-clock bounded);
// "score_round" is a valid name there like any workload.
func runCompare(file string, tolerance, sabreTol float64, names string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	keep := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		if name = strings.TrimSpace(name); name != "" {
			keep[name] = true
		}
	}

	cfg := exp.DefaultConfig()
	opts := cfg.SabreOpts
	if base.Trials > 0 {
		opts.Trials = base.Trials
	}
	if base.Device != cfg.Device.Name() {
		fatal(fmt.Errorf("baseline device %q does not match gate device %q", base.Device, cfg.Device.Name()))
	}

	fmt.Printf("== perf gate: %s (captured on %s), tolerance %.0f%% ns/op (%.0f%% on strict rows), zero-alloc rows strict ==\n",
		file, base.GoVersion, tolerance, sabreTol)
	fmt.Printf("%-16s %-17s %13s %13s %7s %9s %9s  %s\n",
		"workload", "router", "base ns/op", "now ns/op", "Δ%", "base a/op", "now a/op", "verdict")

	failures := 0
	rows := 0
	matched := map[string]bool{}
	for _, b := range base.Rows {
		if len(keep) > 0 && !keep[b.Workload] {
			continue
		}
		matched[b.Workload] = true
		rows++
		var now benchRow
		switch {
		case b.Workload == scoreRoundWorkload:
			now = measureScoreRound(b.Router)
		case b.Workload == streamThroughputWorkload:
			now = measureStreamThroughput(b.Router, cfg.Device)
		default:
			bench, ok := workloads.ByName(b.Workload)
			if !ok {
				fmt.Printf("%-16s %-17s baseline workload no longer exists\n", b.Workload, b.Router)
				failures++
				continue
			}
			now = measureRow(bench, cfg.Device, opts, b.Router)
		}

		tol := tolerance
		if strictRow(b) {
			tol = sabreTol
		}
		deltaPct := 100 * (float64(now.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
		var problems []string
		if deltaPct > tol {
			problems = append(problems, fmt.Sprintf("ns/op +%.1f%% > %.0f%%", deltaPct, tol))
		}
		if strictRow(b) && now.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems, fmt.Sprintf("allocs/op %d > %d", now.AllocsPerOp, b.AllocsPerOp))
		}
		if now.AddedGates != b.AddedGates {
			problems = append(problems, fmt.Sprintf("g_add %d != %d (output drift)", now.AddedGates, b.AddedGates))
		}
		verdict := "ok"
		if len(problems) > 0 {
			verdict = "FAIL: " + strings.Join(problems, "; ")
			failures++
		}
		fmt.Printf("%-16s %-17s %13d %13d %+7.1f %9d %9d  %s\n",
			b.Workload, b.Router, b.NsPerOp, now.NsPerOp, deltaPct, b.AllocsPerOp, now.AllocsPerOp, verdict)
	}
	// A requested name with no baseline row is a misconfigured gate,
	// not a passing one: name each absentee instead of silently
	// shrinking the row set (or, with every name absent, failing with
	// a message that identifies none of them).
	var missing []string
	for name := range keep {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fatal(fmt.Errorf("baseline %s has no rows for requested workload(s): %s",
			file, strings.Join(missing, ", ")))
	}
	if rows == 0 {
		fatal(fmt.Errorf("no baseline rows matched -names %q", names))
	}
	if failures > 0 {
		fatal(fmt.Errorf("perf gate: %d of %d rows regressed against %s", failures, rows, file))
	}
	fmt.Printf("perf gate: %d rows within tolerance\n", rows)
}
