package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/route"
	"repro/internal/workloads"
)

// measureRow benchmarks one workload × router combination with the
// testing package's harness (so ns/op and allocs/op mean exactly what
// `go test -bench` reports). The pseudo-router "sabre-exhaustive" is
// the sabre backend with Options.ExhaustiveScoring set — the
// pre-delta-scoring reference kept in the trajectory so regressions
// of the incremental scorer show up as a shrinking gap.
func measureRow(b workloads.Benchmark, dev *arch.Device, opts core.Options, rname string) benchRow {
	circ := b.Build()
	ropts := opts
	backend := rname
	if rname == "sabre-exhaustive" {
		backend = "sabre"
		ropts.ExhaustiveScoring = true
	}
	router, err := route.New(backend)
	if err != nil {
		fatal(err)
	}
	var res *core.Result
	var routeErr error
	br := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			res, routeErr = router.Route(context.Background(), circ, dev, ropts)
			if routeErr != nil {
				tb.Fatal(routeErr)
			}
		}
	})
	// tb.Fatal only aborts the benchmark function; surface the
	// failure here instead of dereferencing a nil result.
	if routeErr != nil {
		fatal(fmt.Errorf("%s/%s: %w", b.Name, rname, routeErr))
	}
	if res == nil {
		fatal(fmt.Errorf("%s/%s: benchmark produced no result", b.Name, rname))
	}
	return benchRow{
		Workload:    b.Name,
		Router:      rname,
		Gori:        circ.NumGates(),
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AddedGates:  res.AddedGates,
		Depth:       res.Circuit.DecomposeSwaps().Depth(),
		TrialsRun:   res.TrialsRun,
		AvgCands:    res.Stats.AvgCandidates(),
	}
}

// zeroAllocRouter reports whether a router's rows fall under the
// strict no-allocation-growth gate. The sabre backends' allocs/op is
// a fixed per-trial setup cost — the steady-state SWAP round is
// zero-alloc (PR 4's TestScoreRoundZeroAllocs) — so any growth means
// an allocation crept back into the loop and scales with circuit
// size. The baselines (greedy, astar) allocate proportionally to
// work and only get the ns/op tolerance.
func zeroAllocRouter(name string) bool {
	return name == "sabre" || name == "sabre-exhaustive"
}

// runCompare is the CI perf-regression gate: re-measure every row of
// a committed BENCH_*.json baseline on this machine/toolchain and
// fail (exit 1) when the perf trajectory regresses —
//
//   - ns/op above baseline by more than `tolerance` percent;
//   - any allocs/op growth on the zero-alloc (sabre) rows;
//   - any added-gates drift (routing is deterministic: a changed
//     g_add means the algorithm's output changed, not just its speed).
//
// `names` optionally restricts the gate to a comma-separated workload
// subset (CI uses this to keep the gate's wall-clock bounded).
func runCompare(file string, tolerance float64, names string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	keep := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		if name = strings.TrimSpace(name); name != "" {
			keep[name] = true
		}
	}

	cfg := exp.DefaultConfig()
	opts := cfg.SabreOpts
	if base.Trials > 0 {
		opts.Trials = base.Trials
	}
	if base.Device != cfg.Device.Name() {
		fatal(fmt.Errorf("baseline device %q does not match gate device %q", base.Device, cfg.Device.Name()))
	}

	fmt.Printf("== perf gate: %s (captured on %s), tolerance %.0f%% ns/op, zero-alloc rows strict ==\n",
		file, base.GoVersion, tolerance)
	fmt.Printf("%-16s %-17s %13s %13s %7s %9s %9s  %s\n",
		"workload", "router", "base ns/op", "now ns/op", "Δ%", "base a/op", "now a/op", "verdict")

	failures := 0
	rows := 0
	for _, b := range base.Rows {
		if len(keep) > 0 && !keep[b.Workload] {
			continue
		}
		rows++
		bench, ok := workloads.ByName(b.Workload)
		if !ok {
			fmt.Printf("%-16s %-17s baseline workload no longer exists\n", b.Workload, b.Router)
			failures++
			continue
		}
		now := measureRow(bench, cfg.Device, opts, b.Router)

		deltaPct := 100 * (float64(now.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
		var problems []string
		if deltaPct > tolerance {
			problems = append(problems, fmt.Sprintf("ns/op +%.1f%% > %.0f%%", deltaPct, tolerance))
		}
		if zeroAllocRouter(b.Router) && now.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems, fmt.Sprintf("allocs/op %d > %d", now.AllocsPerOp, b.AllocsPerOp))
		}
		if now.AddedGates != b.AddedGates {
			problems = append(problems, fmt.Sprintf("g_add %d != %d (output drift)", now.AddedGates, b.AddedGates))
		}
		verdict := "ok"
		if len(problems) > 0 {
			verdict = "FAIL: " + strings.Join(problems, "; ")
			failures++
		}
		fmt.Printf("%-16s %-17s %13d %13d %+7.1f %9d %9d  %s\n",
			b.Workload, b.Router, b.NsPerOp, now.NsPerOp, deltaPct, b.AllocsPerOp, now.AllocsPerOp, verdict)
	}
	if rows == 0 {
		fatal(fmt.Errorf("no baseline rows matched -names %q", names))
	}
	if failures > 0 {
		fatal(fmt.Errorf("perf gate: %d of %d rows regressed against %s", failures, rows, file))
	}
	fmt.Printf("perf gate: %d rows within tolerance\n", rows)
}
