package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/jobqueue"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// runAsync exercises the async job subsystem end to end over the
// workload suite: every benchmark is submitted as an async job with a
// webhook, progress is collected by long-polling, one extra job is
// cancelled mid-flight, and the queue is drained gracefully. Any
// failed job, missed webhook, or surviving cancelled job fails the
// run (exit 1) — this is the exercise mode `make sabred-smoke`
// complements over real HTTP.
func runAsync(benches []workloads.Benchmark, dev *arch.Device, opts core.Options, routeName string, passes []string, workers int, seed int64) {
	eng := batch.NewEngine(batch.Config{Workers: workers, BaseSeed: seed})
	defer eng.Close()

	// A local webhook sink counts deliveries; the queue must hit it
	// once per terminal job.
	var hooks atomic.Int64
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var payload map[string]any
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			fatal(fmt.Errorf("webhook payload: %w", err))
		}
		hooks.Add(1)
	}))
	defer sink.Close()

	q := jobqueue.New(eng, jobqueue.Config{Workers: workers})
	fmt.Printf("== async job queue: %d jobs, %d workers, device %s, webhook %s ==\n",
		len(benches), workers, dev.Name(), sink.URL)

	start := time.Now()
	ids := make([]string, len(benches))
	for i, b := range benches {
		snap, err := q.Submit(jobqueue.Request{
			Job:     batch.Job{Circuit: b.Build(), Device: dev, Options: opts, Route: routeName, Passes: passes, Tag: b.Name},
			Webhook: sink.URL,
		})
		if err != nil {
			fatal(fmt.Errorf("submit %s: %w", b.Name, err))
		}
		ids[i] = snap.ID
	}

	fmt.Printf("%-16s %-22s %6s %6s %7s %7s\n", "benchmark", "job", "g_ori", "g_add", "depth", "ms")
	for i, id := range ids {
		snap, err := q.Wait(context.Background(), id, 10*time.Minute)
		if err != nil {
			fatal(err)
		}
		if snap.State != jobqueue.StateDone {
			fatal(fmt.Errorf("%s: job %s finished as %s (%s)", benches[i].Name, id, snap.State, snap.Err))
		}
		rep := metrics.Compare(snap.Request.Job.Circuit, snap.Result.Final)
		fmt.Printf("%-16s %-22s %6d %6d %7d %7.1f\n",
			benches[i].Name, id, rep.RefGates, snap.Result.AddedGates, rep.Depth,
			float64(snap.Result.Elapsed.Nanoseconds())/1e6)
	}
	elapsed := time.Since(start)

	// Cancel exercise: resubmit the largest workload and kill it. On a
	// fast machine it may legitimately finish first; what must never
	// happen is a hang or a non-terminal state.
	big := benches[len(benches)-1]
	snap, err := q.Submit(jobqueue.Request{Job: batch.Job{Circuit: big.Build(), Device: dev, Options: opts, Trials: 64, Tag: big.Name + "/cancel"}})
	if err != nil {
		fatal(err)
	}
	if _, err := q.Cancel(snap.ID); err != nil {
		fatal(err)
	}
	snap, err = q.Wait(context.Background(), snap.ID, 10*time.Minute)
	if err != nil {
		fatal(err)
	}
	if !snap.State.Terminal() {
		fatal(fmt.Errorf("cancelled job %s stuck in %s", snap.ID, snap.State))
	}
	fmt.Printf("cancel exercise: job %s -> %s\n", snap.ID, snap.State)

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := q.Close(drainCtx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	if got, want := hooks.Load(), int64(len(benches)); got != want {
		fatal(fmt.Errorf("webhook sink hit %d times, want %d", got, want))
	}
	st := q.Stats()
	fmt.Printf("queue: %d submitted, %d done, %d cancelled, %d webhooks delivered; %d jobs in %v\n",
		st.Submitted, st.Done, st.Cancelled, st.WebhooksDelivered, len(benches), elapsed.Round(time.Millisecond))
}
