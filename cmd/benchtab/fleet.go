package main

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// runFleet drives the fleet scheduler over the benchmark suite: every
// candidate device gets a deterministic (seed-derived) random
// calibration, each workload is scored across the fleet, and the
// winner compiles it under its live snapshot. The table prints one
// column of Total score per candidate (".." = circuit does not fit)
// so the dispatch choice is auditable, then the winner's routing
// outcome.
func runFleet(benches []workloads.Benchmark, specs []string, opts core.Options, workers int, seed int64) {
	if len(specs) < 2 {
		fatal(fmt.Errorf("-fleet needs at least two comma-separated device specs"))
	}
	devs := make([]*arch.Device, len(specs))
	for i, spec := range specs {
		d, err := arch.FromSpec(spec)
		if err != nil {
			fatal(fmt.Errorf("fleet: %w", err))
		}
		// Deterministic per-device calibration: same -seed, same fleet
		// order, same table.
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		if _, err := d.ApplyCalibration(arch.RandomNoise(d, 0.001, 0.05, rng)); err != nil {
			fatal(err)
		}
		devs[i] = d
	}

	opts.Seed = 0 // content-derived seeds, reproducible at any worker count
	eng := batch.NewEngine(batch.Config{Workers: workers, BaseSeed: seed})
	defer eng.Close()

	fmt.Printf("== fleet dispatch: %d workloads over %v (random calibrations, seed %d) ==\n", len(benches), specs, seed)
	fmt.Println("   (per candidate: Total score = error + 0.01*depth; lowest wins, \"..\" = does not fit)")
	fmt.Printf("%-16s %6s", "benchmark", "g_ori")
	for _, d := range devs {
		fmt.Printf(" %12s", truncName(d.Name(), 12))
	}
	fmt.Printf("  %-12s %6s %7s %7s\n", "winner", "g_add", "depth", "ms")

	wins := make(map[string]int, len(devs))
	for _, b := range benches {
		circ := b.Build()
		cands := make([]fleet.Candidate, len(devs))
		for i, d := range devs {
			cands[i] = fleet.Candidate{Device: d}
		}
		dec, err := fleet.Schedule(circ, cands, fleet.Weights{})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.Name, err))
		}
		res := <-eng.Submit(batch.Job{
			Circuit: circ, Device: dec.Device, Options: opts, Tag: b.Name,
			UseCalibration: true,
		})
		if res.Err != nil {
			fatal(fmt.Errorf("%s: %w", b.Name, res.Err))
		}
		rep := metrics.Compare(circ, res.Final)

		fmt.Printf("%-16s %6d", b.Name, rep.RefGates)
		for _, s := range dec.Scores {
			if !s.Fits {
				fmt.Printf(" %12s", "..")
				continue
			}
			fmt.Printf(" %12.2f", s.Total)
		}
		fmt.Printf("  %-12s %6d %7d %7.1f\n",
			truncName(dec.Winner.Device, 12), res.AddedGates, rep.Depth,
			float64(res.Elapsed.Nanoseconds())/1e6)
		wins[dec.Winner.Device]++
	}

	fmt.Print("wins:")
	for _, d := range devs {
		fmt.Printf(" %s=%d", d.Name(), wins[d.Name()])
	}
	fmt.Println()
}

// truncName fits a device name into a fixed table column.
func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}
