package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDevice(t *testing.T) {
	cases := []struct {
		in     string
		qubits int
	}{
		{"q20", 20},
		{"qx5", 16},
		{"line:7", 7},
		{"ring:5", 5},
		{"grid:3x4", 12},
		{"full:6", 6},
	}
	for _, tc := range cases {
		d, err := parseDevice(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if d.NumQubits() != tc.qubits {
			t.Fatalf("%s: %d qubits, want %d", tc.in, d.NumQubits(), tc.qubits)
		}
	}
}

func TestParseDeviceErrors(t *testing.T) {
	for _, in := range []string{"", "bogus", "line:x", "line:0", "grid:3", "grid:axb", "mesh:4"} {
		if _, err := parseDevice(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.qasm")
	out := filepath.Join(dir, "out.qasm")
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[3];
cx q[1],q[2];
cx q[0],q[2];
`
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, "line:4", "", 3, 3, 0.001, "decay", 1, false, true, false, true, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "OPENQASM 2.0;") {
		t.Fatal("output missing header")
	}
	if strings.Contains(text, "swap") {
		t.Fatal("-decompose did not expand SWAPs")
	}
}

func TestRunRejectsBadHeuristic(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.qasm")
	os.WriteFile(in, []byte("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n"), 0o644)
	if err := run(in, "", "line:2", "", 1, 1, 0.001, "wrong", 1, false, false, false, false, ""); err == nil {
		t.Fatal("bad heuristic accepted")
	}
}

func TestRunRejectsMissingInput(t *testing.T) {
	if err := run("/nonexistent/in.qasm", "", "q20", "", 1, 1, 0.001, "decay", 1, false, false, false, false, ""); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunBridgeFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.qasm")
	src := "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[0],q[2];\n"
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.qasm")
	if err := run(in, out, "line:3", "", 2, 1, 0.001, "decay", 1, true, false, false, true, "peephole"); err != nil {
		t.Fatal(err)
	}
}
