// Command sabremap compiles an OpenQASM 2.0 circuit onto a NISQ device
// with SABRE, emitting hardware-compliant QASM.
//
// Usage:
//
//	sabremap -in circuit.qasm -device q20 -out routed.qasm
//	sabremap -in circuit.qasm -device grid:4x5 -decompose -stats
//	sabremap -in circuit.qasm -trials 8 -passes peephole,basis -stats
//	sabremap -in circuit.qasm -route tokenswap -verify
//
// Devices: q20 (IBM Q20 Tokyo), qx5, line:N, ring:N, grid:RxC, full:N.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sabre "repro"
)

func main() {
	var (
		in        = flag.String("in", "", "input QASM file (default stdin)")
		out       = flag.String("out", "", "output QASM file (default stdout)")
		deviceStr = flag.String("device", "q20", "target device: q20|qx5|line:N|ring:N|grid:RxC|full:N")
		trials    = flag.Int("trials", 5, "random initial-mapping restarts")
		travs     = flag.Int("traversals", 3, "forward/backward traversals per trial (odd)")
		delta     = flag.Float64("delta", 0.001, "decay increment δ (depth/gate trade-off)")
		heur      = flag.String("heuristic", "decay", "cost function: basic|lookahead|decay")
		routeName = flag.String("route", "", "routing backend: sabre|greedy|astar|anneal|tokenswap (default sabre)")
		bridge    = flag.Bool("bridge", false, "enable 4-CNOT bridges for non-recurring distance-2 CNOTs")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		decompose = flag.Bool("decompose", false, "expand SWAPs into 3 CNOTs in the output")
		stats     = flag.Bool("stats", false, "print compilation statistics to stderr")
		doVerify  = flag.Bool("verify", false, "verify the routed circuit (GF(2) for CNOT circuits)")
		passes    = flag.String("passes", "", "post-routing pipeline passes, comma-separated: basis|peephole|schedule|verify")
	)
	flag.Parse()

	if err := run(*in, *out, *deviceStr, *routeName, *trials, *travs, *delta, *heur, *seed, *bridge, *decompose, *stats, *doVerify, *passes); err != nil {
		fmt.Fprintln(os.Stderr, "sabremap:", err)
		os.Exit(1)
	}
}

func run(in, out, deviceStr, routeName string, trials, travs int, delta float64, heur string, seed int64, bridge, decompose, stats, doVerify bool, passes string) error {
	var circ *sabre.Circuit
	var err error
	if in == "" {
		circ, err = parseStdin()
	} else {
		circ, err = sabre.ParseQASMFile(in)
	}
	if err != nil {
		return err
	}

	dev, err := parseDevice(deviceStr)
	if err != nil {
		return err
	}

	opts := sabre.DefaultOptions()
	opts.Trials = trials
	opts.Traversals = travs
	opts.DecayDelta = delta
	opts.Seed = seed
	opts.UseBridge = bridge
	switch heur {
	case "basic":
		opts.Heuristic = sabre.HeuristicBasic
	case "lookahead":
		opts.Heuristic = sabre.HeuristicLookahead
	case "decay":
		opts.Heuristic = sabre.HeuristicDecay
	default:
		return fmt.Errorf("unknown heuristic %q", heur)
	}

	// Compilation runs as a pass pipeline: the best-of-N routing stage
	// plus any requested post-routing passes. -verify appends the
	// verify pass, so what gets checked is the circuit actually
	// emitted, after every requested rewrite.
	var extra []string
	for _, p := range strings.Split(passes, ",") {
		if p = strings.TrimSpace(p); p != "" {
			extra = append(extra, p)
		}
	}
	if err := sabre.ValidatePostRoutingPasses(extra); err != nil {
		return err
	}
	if doVerify && (len(extra) == 0 || extra[len(extra)-1] != "verify") {
		extra = append(extra, "verify")
	}
	routeStage := "route"
	if routeName != "" {
		routeStage = "route:" + routeName
	}
	pm, err := sabre.BuildPipeline(append([]string{routeStage}, extra...)...)
	if err != nil {
		return err
	}
	pc, err := pm.Compile(context.Background(), circ, dev, opts)
	if err != nil {
		return err
	}
	res := pc.Result

	if doVerify {
		linear := true
		for _, g := range circ.Gates() {
			if g.Kind != sabre.KindCX && g.Kind != sabre.KindSwap {
				linear = false
				break
			}
		}
		if linear {
			fmt.Fprintln(os.Stderr, "verified: output circuit is hardware-compliant; routing is GF(2)-equivalent to the input")
		} else {
			fmt.Fprintln(os.Stderr, "verified: output circuit is hardware-compliant (input has non-linear gates; equivalence check skipped)")
		}
	}

	output := pc.Circuit
	if decompose {
		output = output.DecomposeSwaps()
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := sabre.WriteQASM(w, output); err != nil {
		return err
	}

	if stats {
		for _, m := range pc.Metrics {
			fmt.Fprintf(os.Stderr, "pass %-10s %10s  gates=%d depth=%d\n", m.Pass, m.Elapsed, m.Gates, m.Depth)
		}
		rep := sabre.CompareCircuits(circ, pc.Circuit)
		em := sabre.Q20ErrorModel()
		fmt.Fprintf(os.Stderr, "device         %s\n", dev)
		fmt.Fprintf(os.Stderr, "input          n=%d gates=%d depth=%d\n", circ.NumQubits(), rep.RefGates, rep.RefDepth)
		fmt.Fprintf(os.Stderr, "output         gates=%d depth=%d\n", rep.Gates, rep.Depth)
		fmt.Fprintf(os.Stderr, "swaps inserted %d (added gates %d)\n", res.SwapCount, res.AddedGates)
		fmt.Fprintf(os.Stderr, "est. fidelity  %.4f (input %.4f)\n",
			sabre.EstimateFidelity(res.Circuit, em), sabre.EstimateFidelity(circ, em))
		fmt.Fprintf(os.Stderr, "compile time   %s\n", res.Elapsed)
		fmt.Fprintf(os.Stderr, "initial layout %v\n", res.InitialLayout[:circ.NumQubits()])
	}
	return nil
}

func parseStdin() (*sabre.Circuit, error) {
	data, err := os.ReadFile("/dev/stdin")
	if err != nil {
		return nil, fmt.Errorf("reading stdin: %w", err)
	}
	return sabre.ParseQASM(string(data))
}

func parseDevice(s string) (*sabre.Device, error) {
	switch s {
	case "q20":
		return sabre.IBMQ20Tokyo(), nil
	case "qx5":
		return sabre.IBMQX5(), nil
	}
	name, arg, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("unknown device %q", s)
	}
	switch name {
	case "line", "ring", "full":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size in device %q", s)
		}
		switch name {
		case "line":
			return sabre.LineDevice(n), nil
		case "ring":
			return sabre.RingDevice(n), nil
		default:
			return fullDevice(n), nil
		}
	case "grid":
		r, c, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("grid device needs RxC, got %q", s)
		}
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil || rows < 1 || cols < 1 {
			return nil, fmt.Errorf("bad grid size %q", s)
		}
		return sabre.GridDevice(rows, cols), nil
	}
	return nil, fmt.Errorf("unknown device %q", s)
}

func fullDevice(n int) *sabre.Device {
	var edges []sabre.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, sabre.CouplingEdge(i, j))
		}
	}
	dev, err := sabre.NewDevice("full", n, edges)
	if err != nil {
		panic(err) // unreachable for n >= 1
	}
	return dev
}
