package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/arch"
)

// maxCalibrationBody bounds a calibration push (a device has at most
// ~a few thousand couplers; 1 MB is ample).
const maxCalibrationBody = 1 << 20

// calibrationRequest is the POST /calibrations/{device} body: the new
// noise data for the device. Unlisted couplers fall back to the
// default rate.
type calibrationRequest struct {
	// Default is the error rate assumed for couplers not listed in
	// Edges. Must be in [0, 1).
	Default float64 `json:"default"`
	// Edges lists per-coupler CNOT error rates.
	Edges []calibrationEdge `json:"edges,omitempty"`
}

// calibrationEdge is one coupler's measured error rate.
type calibrationEdge struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Error float64 `json:"error"`
}

// calibrationResponse describes the installed (or current) snapshot.
type calibrationResponse struct {
	Device  string    `json:"device"`
	Version uint64    `json:"version"`
	Applied time.Time `json:"applied"`
	Default float64   `json:"default"`
	Edges   int       `json:"edges"`
}

func calibrationResponseOf(dev *arch.Device, snap *arch.CalSnapshot) calibrationResponse {
	return calibrationResponse{
		Device:  dev.Name(),
		Version: snap.Version,
		Applied: snap.Applied,
		Default: snap.Model.Default,
		Edges:   len(snap.Model.EdgeError),
	}
}

// handleCalibration serves /calibrations/{device}: POST installs a new
// calibration snapshot (bumping the version, which invalidates every
// cached result routed under the old one), GET reports the current
// snapshot (404 when the device was never calibrated).
func (s *server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	spec := strings.TrimPrefix(r.URL.Path, "/calibrations/")
	if spec == "" || strings.Contains(spec, "/") {
		http.Error(w, "bad calibration path: want /calibrations/{device}", http.StatusBadRequest)
		return
	}
	dev, err := s.device(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		snap := dev.Calibration()
		if snap == nil {
			http.Error(w, fmt.Sprintf("device %q has no calibration", spec), http.StatusNotFound)
			return
		}
		writeJSON(w, calibrationResponseOf(dev, snap))
	case http.MethodPost:
		// A calibration is only useful on the retained device instance
		// — the one compile requests resolve to. Past the device-cache
		// cap the instance would be transient and the snapshot lost.
		if !s.deviceRetained(spec) {
			http.Error(w, "device cache full: cannot retain a calibration for this device", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCalibrationBody))
		if err != nil {
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		var req calibrationRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("bad JSON: %v", err), http.StatusBadRequest)
			return
		}
		m := &arch.NoiseModel{Default: req.Default}
		if len(req.Edges) > 0 {
			m.EdgeError = make(map[arch.Edge]float64, len(req.Edges))
			for _, e := range req.Edges {
				edge := arch.NewEdge(e.A, e.B)
				if _, dup := m.EdgeError[edge]; dup {
					http.Error(w, fmt.Sprintf("duplicate edge (%d,%d) in calibration", edge.A, edge.B), http.StatusBadRequest)
					return
				}
				m.EdgeError[edge] = e.Error
			}
		}
		snap, err := dev.ApplyCalibration(m)
		if err != nil {
			// Validation failures (malformed rates, unknown couplers)
			// name the offending entry.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, calibrationResponseOf(dev, snap))
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// deviceRetained reports whether the spec's device instance is held in
// the server's memo (and so shared with compile requests).
func (s *server) deviceRetained(spec string) bool {
	key := strings.ToLower(strings.TrimSpace(spec))
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.devices[key]
	return ok
}
