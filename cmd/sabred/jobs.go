package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobqueue"
)

// maxLongPoll caps GET /jobs/{id}?wait= so a stuck client cannot pin
// a handler goroutine forever.
const maxLongPoll = time.Minute

// jobResponse is the wire form of one async job — returned by every
// /jobs endpoint and POSTed verbatim to the job's webhook URL, so
// pollers and webhook consumers read one schema:
//
//	{
//	  "id":       "job-12-a1b2c3d4e5f6",
//	  "state":    "queued|running|done|failed|cancelled",
//	  "created":  "2026-07-26T12:00:00Z",
//	  "started":  "...",              // once running
//	  "finished": "...",              // once terminal
//	  "error":    "...",              // failed/cancelled detail
//	  "webhook":  {"url": "...", "attempts": 1, "delivered": true},
//	  "result":   { ...compileResponse... }  // done only: identical
//	}                                        // to POST /compile output
type jobResponse struct {
	ID       string                  `json:"id"`
	State    jobqueue.State          `json:"state"`
	Tag      string                  `json:"tag,omitempty"`
	Created  time.Time               `json:"created"`
	Started  *time.Time              `json:"started,omitempty"`
	Finished *time.Time              `json:"finished,omitempty"`
	Error    string                  `json:"error,omitempty"`
	Webhook  *jobqueue.WebhookStatus `json:"webhook,omitempty"`
	Fleet    *fleetJSON              `json:"fleet,omitempty"`
	Result   *compileResponse        `json:"result,omitempty"`

	// Streaming jobs only: chunks delivered so far and the routing
	// summary of a completed stream (the program itself went out
	// through the per-chunk webhook deliveries).
	Chunks int               `json:"chunks,omitempty"`
	Stream *core.StreamStats `json:"stream,omitempty"`
}

// jobResponseOf renders a queue snapshot. A done job embeds the
// compile response built by the exact code path /compile uses, so
// the async output is byte-identical to the synchronous one. full
// selects whether the result carries the rendered QASM (poll and
// webhook payloads) or just the metrics summary (the list view —
// serializing every retained circuit per dashboard poll would be
// pure waste).
func jobResponseOf(snap jobqueue.Snapshot, full bool) jobResponse {
	out := jobResponse{
		ID:      snap.ID,
		State:   snap.State,
		Tag:     snap.Request.Job.Tag,
		Created: snap.Created,
		Error:   snap.Err,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		out.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		out.Finished = &t
	}
	if snap.Webhook.URL != "" {
		wh := snap.Webhook
		out.Webhook = &wh
	}
	out.Fleet = fleetJSONOf(snap.Request.Fleet)
	out.Chunks = snap.Chunks
	if snap.StreamResult != nil {
		st := snap.StreamResult.Stats
		out.Stream = &st
	}
	if snap.State == jobqueue.StateDone && snap.Result != nil {
		in := &compileInput{circ: snap.Request.Job.Circuit, dev: snap.Request.Job.Device, fleet: snap.Request.Fleet}
		var cr compileResponse
		if full {
			cr = buildCompileResponse(in, snap.Result)
		} else {
			cr = buildCompileSummary(in, snap.Result)
		}
		out.Result = &cr
	}
	return out
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// handleJobSubmit accepts the same request forms as /compile (plus
// the webhook field/param) and parks the compilation on the queue:
// 202 Accepted with the queued jobResponse and a Location header.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if mode, err := streamMode(r); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if mode != "" {
		s.handleJobSubmitStream(w, r)
		return
	}
	in, err := s.parseCompile(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.scheduleFleet(in); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := s.queue.Submit(jobqueue.Request{Job: in.batchJob(), Webhook: in.webhook, Fleet: in.fleet, DeviceSpec: in.devSpec})
	if err != nil {
		// A full backlog or a draining daemon is load, not client
		// error: 503 tells well-behaved clients to back off and retry.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobResponseOf(snap, true))
}

// handleJobList reports every retained job (newest first) plus the
// queue counters.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.queue.List()
	jobs := make([]jobResponse, len(snaps))
	for i, snap := range snaps {
		// The list is a dashboard, not a result fetch: summaries only
		// (no QASM). Poll the job URL for the full result.
		jobs[i] = jobResponseOf(snap, false)
	}
	writeJSON(w, map[string]any{
		"jobs":  jobs,
		"stats": s.queue.Stats(),
	})
}

// handleJobByID serves one job: GET polls (long-poll via ?wait=),
// DELETE cancels.
func (s *server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "bad job path", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		wait, err := parseWait(r.URL.Query().Get("wait"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The long-poll parks on the client context OR the daemon's
		// drain signal — a shutting-down daemon answers parked polls
		// with their current snapshot instead of holding http.Shutdown
		// hostage for the rest of the wait window.
		ctx, cancel := context.WithCancel(r.Context())
		go func() {
			select {
			case <-s.draining:
				cancel()
			case <-ctx.Done():
			}
		}()
		snap, err := s.queue.Wait(ctx, id, wait)
		cancel()
		if jobError(w, err) {
			return
		}
		writeJSON(w, jobResponseOf(snap, true))
	case http.MethodDelete:
		snap, err := s.queue.Cancel(id)
		if jobError(w, err) {
			return
		}
		writeJSON(w, jobResponseOf(snap, true))
	default:
		http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
	}
}

// parseWait parses the ?wait= long-poll window: a Go duration
// ("1.5s") or bare seconds ("2"). Values above maxLongPoll are
// rejected, not clamped — a silent clamp would let clients believe
// they waited the full window when the daemon cut it short.
func parseWait(raw string) (time.Duration, error) {
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		var secs float64
		if _, serr := fmt.Sscanf(raw, "%g", &secs); serr != nil {
			return 0, fmt.Errorf("bad wait %q: want a duration like 5s", raw)
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		return 0, fmt.Errorf("bad wait %q: must be non-negative", raw)
	}
	if d > maxLongPoll {
		return 0, fmt.Errorf("bad wait %q: exceeds the %s long-poll cap", raw, maxLongPoll)
	}
	return d, nil
}

// jobError maps queue errors onto HTTP statuses; it reports whether a
// response was written.
func jobError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, jobqueue.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}
