package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qasm"
	"repro/internal/workloads"
)

func streamSource(t *testing.T, qubits, gates int) string {
	t.Helper()
	return qasm.Format(workloads.RandomCircuit("sabred-stream", qubits, gates, 0.55, 23))
}

// postStream POSTs raw QASM to the streaming endpoint and returns the
// response, its full body, and the trailers observed after the body.
func postStream(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read stream body: %v", err)
	}
	return resp, out
}

// TestCompileStreamParity: the windowed arm and the materialized
// oracle arm must produce byte-identical routed programs over HTTP,
// and both must parse.
func TestCompileStreamParity(t *testing.T) {
	ts, srv := newTestServer(t)
	src := streamSource(t, 16, 2500)

	windowed, wbody := postStream(t, ts.URL+"/compile?stream=1&device=tokyo&chunk=256", src)
	if windowed.StatusCode != http.StatusOK {
		t.Fatalf("windowed status %d: %s", windowed.StatusCode, wbody)
	}
	oracle, obody := postStream(t, ts.URL+"/compile?stream=materialized&device=tokyo&chunk=256", src)
	if oracle.StatusCode != http.StatusOK {
		t.Fatalf("materialized status %d: %s", oracle.StatusCode, obody)
	}
	if !bytes.Equal(wbody, obody) {
		t.Fatalf("windowed and materialized streams differ (%d vs %d bytes)", len(wbody), len(obody))
	}
	routed, err := qasm.Parse(string(wbody))
	if err != nil {
		t.Fatalf("streamed QASM does not parse: %v", err)
	}
	dev, err := srv.device("tokyo")
	if err != nil {
		t.Fatal(err)
	}
	if routed.NumQubits() != dev.NumQubits() {
		t.Fatalf("streamed width %d, want %d", routed.NumQubits(), dev.NumQubits())
	}
	for i, g := range routed.Gates() {
		if g.TwoQubit() && !dev.Connected(g.Q0, g.Q1) {
			t.Fatalf("streamed gate %d (%v %d,%d) not device-compliant", i, g.Kind, g.Q0, g.Q1)
		}
	}
}

// TestCompileStreamTrailers: a fully consumed stream exposes the
// routing statistics as HTTP trailers, and they are self-consistent.
func TestCompileStreamTrailers(t *testing.T) {
	ts, _ := newTestServer(t)
	src := streamSource(t, 14, 1500)

	resp, body := postStream(t, ts.URL+"/compile?stream=1&device=tokyo&chunk=128", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	for _, name := range []string{
		"X-Sabre-Swaps", "X-Sabre-Bridges", "X-Sabre-Gates-In", "X-Sabre-Gates-Out",
		"X-Sabre-Chunks", "X-Sabre-Max-Window", "X-Sabre-Gates-Per-Sec",
	} {
		if resp.Trailer.Get(name) == "" {
			t.Fatalf("trailer %s missing (trailers: %v)", name, resp.Trailer)
		}
	}
	gatesIn, _ := strconv.Atoi(resp.Trailer.Get("X-Sabre-Gates-In"))
	gatesOut, _ := strconv.Atoi(resp.Trailer.Get("X-Sabre-Gates-Out"))
	chunks, _ := strconv.Atoi(resp.Trailer.Get("X-Sabre-Chunks"))
	if gatesIn != 1500 {
		t.Fatalf("gates-in trailer %d, want 1500", gatesIn)
	}
	if gatesOut < gatesIn {
		t.Fatalf("gates-out %d < gates-in %d", gatesOut, gatesIn)
	}
	if chunks < 2 {
		t.Fatalf("chunks trailer %d, want >= 2 at chunk=128", chunks)
	}
	routed, err := qasm.Parse(string(body))
	if err != nil {
		t.Fatal(err)
	}
	// Streamed program = routed gates; measures are absent unless the
	// input had them, so the gate count must match the trailer exactly.
	if got := routed.NumGates(); got != gatesOut {
		t.Fatalf("body has %d gates, gates-out trailer says %d", got, gatesOut)
	}
}

// TestCompileStreamRejects: malformed streaming requests fail before
// the first byte with ordinary error statuses.
func TestCompileStreamRejects(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, url, ctype, body string
		status                 int
	}{
		{"bad stream value", "/compile?stream=definitely", "text/plain", "OPENQASM 2.0;", http.StatusBadRequest},
		{"json envelope", "/compile?stream=1", "application/json", `{"qasm":"x"}`, http.StatusBadRequest},
		{"bad device", "/compile?stream=1&device=nope", "text/plain", "OPENQASM 2.0;", http.StatusBadRequest},
		{"bad window", "/compile?stream=1&window=-3", "text/plain", "OPENQASM 2.0;", http.StatusBadRequest},
		{"bad chunk", "/compile?stream=1&chunk=x", "text/plain", "OPENQASM 2.0;", http.StatusBadRequest},
		{"parse error pre-byte", "/compile?stream=1", "text/plain", "this is not qasm", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, tc.ctype, strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestCompileStreamClientGone499: a request whose context is already
// dead before the router emits anything maps to the nonstandard 499.
func TestCompileStreamClientGone499(t *testing.T) {
	_, srv := newTestServer(t)
	src := streamSource(t, 12, 400)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/compile?stream=1", strings.NewReader(src)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.handleCompileStream(rec, req, "windowed")
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("499 response carried %d body bytes", rec.Body.Len())
	}
}

// TestCompileStreamTornOnBodyError: once routed bytes are on the wire
// a mid-stream failure must tear the connection (no trailers, no
// clean EOF) instead of fabricating a complete-looking response.
func TestCompileStreamTornOnBodyError(t *testing.T) {
	ts, _ := newTestServer(t)
	src := streamSource(t, 14, 1200)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile?stream=1&chunk=16", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	go func() {
		// Feed most of the program so chunks flush, then fail the body
		// mid-statement: the scanner surfaces a read error after output
		// has been committed.
		io.Copy(pw, strings.NewReader(src[:len(src)*3/4]))
		pw.CloseWithError(fmt.Errorf("uplink died"))
	}()

	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		// The abort can race the response headers; a transport error is
		// an acceptable shape of "torn".
		return
	}
	defer resp.Body.Close()
	_, readErr := io.ReadAll(resp.Body)
	if readErr == nil {
		// A clean EOF with a complete trailer set would mean the daemon
		// faked success after losing the request body.
		if resp.Trailer.Get("X-Sabre-Gates-Out") != "" {
			t.Fatal("torn stream delivered a complete response with trailers")
		}
	}
}

// streamChunkSink records webhook chunk deliveries for the async path.
type streamChunkSink struct {
	mu       sync.Mutex
	chunks   map[int][]byte
	terminal []byte
}

func (c *streamChunkSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := r.Header.Get("X-Sabre-Chunk"); h != "" {
		n, _ := strconv.Atoi(h)
		if c.chunks == nil {
			c.chunks = make(map[int][]byte)
		}
		c.chunks[n] = append([]byte(nil), body...)
	} else {
		c.terminal = append([]byte(nil), body...)
	}
	w.WriteHeader(http.StatusOK)
}

func (c *streamChunkSink) concat() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.chunks))
	for id := range c.chunks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out bytes.Buffer
	for _, id := range ids {
		out.Write(c.chunks[id])
	}
	return out.Bytes()
}

// TestJobStreamEndpoint: POST /jobs?stream=1 parks a streaming job,
// the webhook receives ordered chunks whose concatenation equals the
// synchronous /compile?stream=1 output for the same request.
func TestJobStreamEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	src := streamSource(t, 14, 1000)

	sink := &streamChunkSink{}
	ws := httptest.NewServer(sink)
	defer ws.Close()

	url := ts.URL + "/jobs?stream=1&device=tokyo&chunk=200&webhook=" + ws.URL
	resp, err := http.Post(url, "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var job jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+job.ID {
		t.Fatalf("location %q", loc)
	}

	// Long-poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		pr, err := http.Get(ts.URL + "/jobs/" + job.ID + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(pr.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if job.State == "failed" || job.State == "cancelled" {
			t.Fatalf("job %s: %s", job.State, job.Error)
		}
	}

	// The terminal view carries the streaming accounting: how many
	// chunks went out and the routing summary (the program itself
	// lives only in the webhook deliveries).
	if job.Chunks < 2 {
		t.Fatalf("terminal chunks = %d, want >= 2", job.Chunks)
	}
	if job.Stream == nil || job.Stream.GatesOut < job.Stream.GatesIn || job.Stream.GatesIn != 1000 {
		t.Fatalf("terminal stream stats = %+v", job.Stream)
	}

	// The chunk concatenation must equal the synchronous stream bytes.
	want, wbody := postStream(t, ts.URL+"/compile?stream=1&device=tokyo&chunk=200", src)
	if want.StatusCode != http.StatusOK {
		t.Fatalf("sync stream status %d", want.StatusCode)
	}
	got := sink.concat()
	if !bytes.Equal(got, wbody) {
		t.Fatalf("webhook chunks differ from sync stream (%d vs %d bytes)", len(got), len(wbody))
	}
	if _, err := qasm.Parse(string(got)); err != nil {
		t.Fatalf("chunk concatenation does not parse: %v", err)
	}
}

// TestJobStreamRejects: webhook-less and JSON-bodied streaming job
// submissions are refused up front.
func TestJobStreamRejects(t *testing.T) {
	ts, _ := newTestServer(t)
	src := streamSource(t, 12, 200)

	resp, err := http.Post(ts.URL+"/jobs?stream=1", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("webhook-less stream job: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/jobs?stream=1&webhook=http://localhost:1/h", "application/json", strings.NewReader(`{"qasm":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("JSON stream job: status %d, want 400", resp.StatusCode)
	}
}
