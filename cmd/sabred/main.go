// Command sabred is a compilation daemon: it serves SABRE qubit
// mapping over HTTP/JSON on top of the concurrent batch engine
// (bounded worker pool + sharded LRU result cache), so heavy circuit
// traffic compiles as fast as the hardware allows and repeated
// circuits are served from memory.
//
//	sabred -addr :8037 -workers 8 -cache 4096
//
// # Synchronous API (v1)
//
//	POST /compile?device=tokyo[&seed=7&trials=5&bridge=1&heuristic=decay&route=anneal&passes=peephole,basis]
//	    Body: OpenQASM 2.0 source (or, with Content-Type
//	    application/json, {"qasm": "...", "device": "...",
//	    "options": {...}, "trials": 8, "route": "tokenswap",
//	    "passes": ["peephole"]}).
//	    Returns routed QASM plus metrics, including per-pass
//	    timing/gate/depth snapshots. Cancelled requests (client
//	    disconnects) stop compiling within one SWAP round.
//	GET  /devices    topology catalogue (incl. parameterized forms)
//	GET  /stats      engine + job-queue counters
//	GET  /healthz    liveness probe
//
// # Calibration API
//
// Devices carry versioned calibration snapshots (arch.CalSnapshot).
// Every compile — sync or async — pins the device's current snapshot
// and folds its version into the result-cache key, so pushing a new
// calibration invalidates stale cached routes by construction:
//
//	POST /calibrations/{device}
//	    Body: {"default": 0.01, "edges": [{"a": 0, "b": 1,
//	    "error": 0.04}, ...]}. Installs the snapshot (version bump);
//	    malformed rates or non-coupler edges are rejected with a 400
//	    naming the offending entry. Returns {"device", "version",
//	    "applied", "default", "edges"}.
//	GET  /calibrations/{device}
//	    The current snapshot, or 404 if never calibrated.
//
// Compile responses carry the snapshot version used as "cal_version"
// (0 = uncalibrated).
//
// # Fleet scheduling
//
// Instead of naming one device, a request may offer a candidate fleet
// and let the daemon pick: "fleet": ["tokyo", "grid:4x5"] in the JSON
// body, or ?fleet=tokyo,grid:4x5 (mutually exclusive with "device").
// The scheduler (internal/fleet) scores every candidate on predicted
// error under its live calibration, a routing-depth estimate, and
// current queue load, then compiles on the winner. The response's
// "fleet" object reports the chosen device, its calibration version,
// and the per-candidate score table; async jobs carry the same object
// in every /jobs view.
//
// # Async job API (v2)
//
// Long compiles (Table II-scale circuits run for seconds) should not
// be chained to a request lifetime; the v2 API parks them on the
// async job queue (internal/jobqueue) instead:
//
//	POST   /jobs            submit — same body forms as /compile, plus
//	                        "webhook" (JSON field or ?webhook= query
//	                        param): an absolute http(s) URL POSTed the
//	                        completion payload. Returns 202 Accepted,
//	                        a Location header and the queued job:
//	                        {"id": "job-1-ab12cd34ef56", "state":
//	                        "queued", ...}. A full backlog returns 503.
//	GET    /jobs/{id}       poll; ?wait=5s long-polls until the job is
//	                        terminal or the window elapses, returning
//	                        the current state either way. Windows over
//	                        the 1m cap are rejected with a 400 (not
//	                        silently clamped).
//	DELETE /jobs/{id}       cancel: a queued job dies immediately, a
//	                        running one within one SWAP round.
//	GET    /jobs            list retained jobs (results trimmed of
//	                        QASM) plus queue stats.
//
// Job states: queued → running → done | failed | cancelled. Terminal
// jobs (and their results) are retained -job-ttl for polling, then
// garbage-collected.
//
// # Webhook payload schema
//
// The webhook body is exactly the jobResponse a poller reads from
// GET /jobs/{id} — one schema for both delivery paths:
//
//	{
//	  "id":       "job-1-ab12cd34ef56",
//	  "state":    "done",                  // or "failed"/"cancelled"
//	  "created":  "2026-07-26T12:00:00Z",
//	  "started":  "...", "finished": "...",
//	  "error":    "...",                   // failed/cancelled detail
//	  "webhook":  {"url": "...", "attempts": 1, "delivered": false},
//	  "result":   { ...same fields as POST /compile's response... }
//	}
//
// Delivery is attempted up to 3 times with exponential backoff; any
// 2xx settles it. Requests carry X-Sabre-Job and X-Sabre-Attempt
// headers. The "result" object — including its "qasm" — is built by
// the same code path as the synchronous response, so an async job is
// byte-identical to POST /compile for the same request.
//
// Delivery stops early on a permanent 4xx (anything but 408/429): a
// consumer that rejects the payload will keep rejecting it.
//
// # Streaming API
//
// Million-gate traces should not be materialized on either side of
// the wire; ?stream=1 selects the windowed streaming compiler:
//
//	POST /compile?stream=1&device=tokyo[&chunk=1024&lookahead=256&window=4096]
//	    Body: raw OpenQASM 2.0 of any length (no body cap, no JSON
//	    envelope). The routed program streams back incrementally as
//	    text/plain; routing statistics (X-Sabre-Swaps, X-Sabre-Gates-In,
//	    X-Sabre-Gates-Out, X-Sabre-Chunks, X-Sabre-Max-Window,
//	    X-Sabre-Gates-Per-Sec, X-Sabre-Bridges) arrive as HTTP trailers.
//	    A response without trailers is torn — the compile failed after
//	    bytes were committed. Client disconnect before the first byte
//	    maps to 499. stream=materialized routes the same request through
//	    the whole-circuit oracle (identical bytes, for differential
//	    testing).
//	POST /jobs?stream=1&device=tokyo&webhook=URL
//	    Async form; the webhook is mandatory because the routed program
//	    leaves through it. Each chunk is POSTed as text/plain with
//	    X-Sabre-Job and X-Sabre-Chunk (0-based order) headers; the
//	    concatenation of chunk bodies in X-Sabre-Chunk order is one
//	    complete OpenQASM 2.0 program. Chunks are delivered once, in
//	    order, and never retried — a rejected chunk fails the job. The
//	    terminal webhook payload and the GET /jobs/{id} view carry
//	    "chunks" (the delivery count) and a "stream" block (gates
//	    in/out, swaps, high-water window, gates/sec) alongside the
//	    usual state fields. Durable queues (-job-log)
//	    refuse streaming jobs: a half-delivered stream has no replayable
//	    representation.
//
// # Durability & crash recovery
//
// With -job-log DIR the async queue writes every job lifecycle
// transition to an append-only, CRC-checked log (internal/joblog) and
// replays it on boot: jobs that were queued or running when the
// process died (SIGKILL, OOM, power) re-enter the backlog in their
// original admission order, keep their job IDs, and — compilation
// being deterministic — produce byte-identical results. Recovery
// counts appear under "queue"."recovery" in GET /stats. -fsync picks
// the sync policy: "always" (default; a job is on disk before its ID
// is returned), "interval" (bounded loss, amortized cost), "never".
// A corrupt log (not the torn tail a crash normally leaves — that is
// dropped silently) refuses to boot, naming the offending offset.
//
//	sabred -addr :8037 -job-log /var/lib/sabred/jobs -fsync always
//
// -fault-routes registers the scripted "panic" router for failure
// drills: a job routed with it fails with the panic and stack while
// the daemon keeps serving. Never enable it in production.
//
// On SIGINT/SIGTERM the daemon drains gracefully: in-flight HTTP
// requests finish, accepted jobs run to completion (webhooks
// included) within the -drain budget, then outstanding work is
// cancelled.
//
// Devices: tokyo (ibmq20), qx5, falcon27, plus parameterized
// line:<n>, ring:<n>, star:<n>, full:<n>, grid:<r>x<c>,
// sycamore:<r>x<c>, aspen:<octagons>.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/joblog"
	"repro/internal/jobqueue"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/qasm"
	"repro/internal/route"
)

func main() {
	var (
		addr         = flag.String("addr", ":8037", "listen address")
		workers      = flag.Int("workers", 0, "compilation workers (0 = GOMAXPROCS)")
		trialWorkers = flag.Int("trial-workers", 0, "per-request routing-trial fan-out (0 = GOMAXPROCS)")
		cache        = flag.Int("cache", 4096, "result-cache entries (negative disables)")
		seed         = flag.Int64("seed", 1, "base seed for derived per-job seeds")
		patience     = flag.Int("patience", 0, "adaptive routing trials: stop after this many consecutive non-improving seeds (0 = exhaustive)")
		jobWorkers   = flag.Int("job-workers", 0, "async jobs compiled concurrently (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 1024, "async job backlog bound (submissions beyond it get 503)")
		jobTTL       = flag.Duration("job-ttl", 15*time.Minute, "retention of finished async jobs for polling")
		drainTimeout = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight work")
		jobLogDir    = flag.String("job-log", "", "durable job-log directory: accepted async jobs survive a crash and replay on the next boot (empty = in-memory only)")
		fsyncMode    = flag.String("fsync", "always", "job-log sync policy: always (every append reaches disk before the job is acknowledged), interval, never")
		faultRoutes  = flag.Bool("fault-routes", false, "register the scripted fault routers (route \"panic\") for failure testing; never enable in production")
	)
	flag.Parse()

	if *faultRoutes {
		faults.RegisterPanicRouter()
	}
	fsyncPolicy, err := joblog.ParseFsync(*fsyncMode)
	if err != nil {
		log.Fatalf("sabred: %v", err)
	}

	if *trialWorkers <= 0 {
		// A daemon serves sparse single-circuit requests: parallelise
		// each request's best-of-N trials, not just across requests.
		*trialWorkers = runtime.GOMAXPROCS(0)
	}
	eng := batch.NewEngine(batch.Config{Workers: *workers, CacheEntries: *cache, BaseSeed: *seed, TrialWorkers: *trialWorkers, TrialPatience: *patience})
	defer eng.Close()

	srv, err := newServer(eng, jobqueue.Config{
		Workers:    *jobWorkers,
		QueueDepth: *queueDepth,
		TTL:        *jobTTL,
		Durable:    jobqueue.DurabilityConfig{Dir: *jobLogDir, Fsync: fsyncPolicy},
	})
	if err != nil {
		// A corrupt job log names the offending byte offset here; we
		// refuse to boot rather than silently drop acknowledged jobs.
		log.Fatalf("sabred: job log: %v", err)
	}
	if st := srv.queue.Stats(); st.Recovery != nil && st.Recovery.Replayed > 0 {
		log.Printf("sabred: job log replayed %d jobs (%d queued, %d running at crash, %d dropped)",
			st.Recovery.Replayed, st.Recovery.Queued, st.Recovery.Running, st.Recovery.Dropped)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sabred: listen: %v", err)
	}
	// The actual address matters when -addr asks for port 0 (tests,
	// the CI smoke driver); log what the kernel granted.
	log.Printf("sabred: listening on %s (%d workers, cache %d)", ln.Addr(), eng.Workers(), *cache)

	hs := &http.Server{Handler: srv.routes()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// Graceful drain: on SIGINT/SIGTERM stop accepting connections,
	// finish in-flight requests, then drain the async job queue —
	// accepted jobs complete (webhooks included) unless the drain
	// budget expires, at which point outstanding compilations are
	// cancelled (the router honors it within one SWAP round).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-done:
		log.Fatalf("sabred: serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("sabred: shutting down (drain %v)", *drainTimeout)
	// Release parked long-polls first: http.Shutdown waits for
	// in-flight requests, and a ?wait= poller would otherwise hold it
	// (and the shared drain budget) for up to a minute.
	close(srv.draining)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("sabred: http shutdown: %v", err)
	}
	if err := srv.queue.Close(shutdownCtx); err != nil {
		log.Printf("sabred: job-queue drain: %v", err)
	}
	log.Printf("sabred: drained")
}

// maxBodyBytes bounds a compile request body (large arithmetic
// benchmarks are ~1 MB of QASM; 16 MB leaves ample headroom).
const maxBodyBytes = 16 << 20

// maxTrials bounds the client-requested best-of-N fan-out: the trial
// runner allocates O(trials) slices and channel capacity up front, so
// an unchecked huge value is a memory/CPU DoS. 10k is far above any
// useful restart schedule (the paper uses 5).
const maxTrials = 10_000

// server carries the shared engine, the async job queue, and a
// construct-once device cache (device construction runs
// Floyd–Warshall, worth amortizing).
type server struct {
	eng   *batch.Engine
	queue *jobqueue.Queue
	start time.Time

	// draining is closed when graceful shutdown begins. Long-poll
	// handlers select on it so parked ?wait= requests return their
	// current snapshot immediately instead of pinning http.Shutdown
	// for up to maxLongPoll and starving the queue drain of its
	// budget.
	draining chan struct{}

	mu      sync.Mutex
	devices map[string]*arch.Device
}

func newServer(eng *batch.Engine, qcfg jobqueue.Config) (*server, error) {
	s := &server{eng: eng, start: time.Now(), devices: make(map[string]*arch.Device), draining: make(chan struct{})}
	// The webhook body is the exact jobResponse a poller would read —
	// one schema for both delivery paths.
	qcfg.Payload = func(snap jobqueue.Snapshot) any { return jobResponseOf(snap, true) }
	if qcfg.Durable.Dir != "" && qcfg.Durable.Device == nil {
		// Replayed jobs resolve their device through the server's memo
		// so they share calibratable device instances with live
		// traffic (a POST /calibrations must reach replayed jobs too).
		qcfg.Durable.Device = s.device
	}
	q, err := jobqueue.Open(eng, qcfg)
	if err != nil {
		return nil, err
	}
	s.queue = q
	return s, nil
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobByID)
	mux.HandleFunc("/calibrations/", s.handleCalibration)
	mux.HandleFunc("/devices", s.handleDevices)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// compileRequest is the JSON envelope form of a compile request.
type compileRequest struct {
	QASM    string         `json:"qasm"`
	Device  string         `json:"device"`
	Options optionsRequest `json:"options"`

	// Trials overrides the best-of-N routing fan-out (options.trials
	// also works; this wins when both are set).
	Trials int `json:"trials,omitempty"`
	// Route names the routing backend from the router registry:
	// sabre (default), greedy, astar, anneal, tokenswap.
	Route string `json:"route,omitempty"`
	// Passes names post-routing pipeline passes to run in order:
	// basis, peephole, schedule, verify.
	Passes []string `json:"passes,omitempty"`

	// Webhook, on the async /jobs endpoint, is an absolute http(s)
	// URL POSTed the completion payload (the jobResponse schema) when
	// the job reaches a terminal state. Ignored by /compile.
	Webhook string `json:"webhook,omitempty"`

	// Fleet lists candidate device specs; the daemon scores each
	// (predicted error under its current calibration snapshot, depth
	// estimate, queue load) and compiles on the winner. Mutually
	// exclusive with an explicit device.
	Fleet []string `json:"fleet,omitempty"`
}

// optionsRequest exposes the result-affecting SABRE knobs; zero fields
// keep the paper's defaults.
type optionsRequest struct {
	Heuristic         string  `json:"heuristic,omitempty"`
	ExtendedSetSize   int     `json:"extended_set_size,omitempty"`
	ExtendedSetWeight float64 `json:"extended_set_weight,omitempty"`
	DecayDelta        float64 `json:"decay_delta,omitempty"`
	Trials            int     `json:"trials,omitempty"`
	Traversals        int     `json:"traversals,omitempty"`
	Seed              int64   `json:"seed,omitempty"`
	UseBridge         bool    `json:"use_bridge,omitempty"`
}

// compileResponse reports the routed circuit and the paper's metrics.
type compileResponse struct {
	Name          string `json:"name,omitempty"`
	Device        string `json:"device"`
	DeviceQubits  int    `json:"device_qubits"`
	OriginalGates int    `json:"original_gates"`
	OriginalDepth int    `json:"original_depth"`
	Swaps         int    `json:"swaps"`
	Bridges       int    `json:"bridges"`
	AddedGates    int    `json:"added_gates"`
	Gates         int    `json:"gates"`
	Depth         int    `json:"depth"`
	InitialLayout []int  `json:"initial_layout"`
	FinalLayout   []int  `json:"final_layout"`
	CacheHit      bool   `json:"cache_hit"`
	Key           string `json:"key"`
	ElapsedNS     int64  `json:"elapsed_ns"`

	// CalVersion is the device calibration snapshot the job compiled
	// under (0 = uncalibrated). A recalibration bumps it — and changes
	// the cache key, which is why the first compile after a
	// recalibration reports cache_hit:false.
	CalVersion uint64 `json:"cal_version"`

	// Fleet reports the scheduling decision when the request offered
	// candidate devices.
	Fleet *fleetJSON `json:"fleet,omitempty"`

	// Passes instruments the pipeline: one entry per executed pass
	// (route plus any requested post-routing passes) with wall-clock
	// time and gate/depth snapshots.
	Passes []passMetricJSON `json:"passes"`

	QASM string `json:"qasm"`
}

// passMetricJSON is the wire form of one pass metric.
type passMetricJSON struct {
	Pass      string `json:"pass"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Gates     int    `json:"gates"`
	Depth     int    `json:"depth"`
}

func passMetrics(ms []pipeline.PassMetric) []passMetricJSON {
	out := make([]passMetricJSON, len(ms))
	for i, m := range ms {
		out[i] = passMetricJSON{Pass: m.Pass, ElapsedNS: m.Elapsed.Nanoseconds(), Gates: m.Gates, Depth: m.Depth}
	}
	return out
}

// compileInput is the fully-validated form of a compile request —
// what both the synchronous /compile handler and the async /jobs
// handler hand to the engine. Because a single parser produces it, an
// async job can never be built from a request the synchronous path
// would have rejected, and both paths compile the identical batch.Job
// (same cache key, same derived seed → byte-identical output).
type compileInput struct {
	circ    *circuit.Circuit
	dev     *arch.Device
	opts    core.Options
	trials  int
	route   string
	passes  []string
	webhook string

	// devSpec is the spec string dev was resolved from — what a
	// durable job log persists (device display names do not re-parse).
	devSpec string

	// fleetDevs holds the resolved fleet candidates (empty = no fleet
	// request); scheduleFleet turns them into a decision and rebinds
	// dev (and devSpec, via fleetSpecs) to the winner.
	fleetDevs  []*arch.Device
	fleetSpecs []string
	fleet      *fleet.Decision
}

// batchJob lifts the parsed input to the engine's job form. Every
// daemon job routes under the device's live calibration snapshot
// (UseCalibration): a no-op until POST /calibrations/{device} installs
// one, after which compiles are noise-aware and the snapshot version
// joins the cache key.
func (in *compileInput) batchJob() batch.Job {
	return batch.Job{
		Circuit: in.circ, Device: in.dev, Options: in.opts,
		Trials: in.trials, Route: in.route, Passes: in.passes,
		UseCalibration: true,
	}
}

// scheduleFleet resolves a fleet request: score every candidate under
// current calibration snapshots and queue loads, rebind in.dev to the
// winner, and record the decision for the response. No-op without
// candidates. Failures (e.g. the circuit fits no candidate) are the
// client's fault: 400.
func (s *server) scheduleFleet(in *compileInput) error {
	if len(in.fleetDevs) == 0 {
		return nil
	}
	loads := s.queue.Loads()
	cands := make([]fleet.Candidate, len(in.fleetDevs))
	for i, d := range in.fleetDevs {
		cands[i] = fleet.Candidate{Device: d, Load: loads[d.Name()]}
	}
	dec, err := fleet.Schedule(in.circ, cands, fleet.Weights{})
	if err != nil {
		return err
	}
	in.dev = dec.Device
	in.fleet = dec
	// Rebind the persisted spec to the winner (candidates and specs
	// are parallel slices from parseCompile).
	for i, d := range in.fleetDevs {
		if d == dec.Device {
			in.devSpec = in.fleetSpecs[i]
			break
		}
	}
	return nil
}

// fleetJSON is the wire form of a fleet-scheduling decision.
type fleetJSON struct {
	// Device is the winning device's name.
	Device string `json:"device"`
	// CalVersion is the calibration snapshot the winner was scored
	// under (0 = uncalibrated).
	CalVersion uint64 `json:"cal_version"`
	// Scores holds every candidate's scoring row, in request order.
	Scores []fleet.Score `json:"scores"`
}

func fleetJSONOf(dec *fleet.Decision) *fleetJSON {
	if dec == nil {
		return nil
	}
	return &fleetJSON{Device: dec.Winner.Device, CalVersion: dec.Winner.CalVersion, Scores: dec.Scores}
}

// parseCompile reads and validates a compile request in either
// encoding (raw QASM + query params, or the JSON envelope). Every
// failure is the client's fault and maps to 400.
func (s *server) parseCompile(w http.ResponseWriter, r *http.Request) (*compileInput, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}

	var (
		src        string
		devName    string
		opts       core.Options
		trials     int
		routeName  string
		passes     []string
		webhook    string
		fleetSpecs []string
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req compileRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad JSON: %w", err)
		}
		src, devName = req.QASM, req.Device
		if devName == "" {
			devName = r.URL.Query().Get("device")
		}
		if opts, err = req.Options.toCore(); err != nil {
			return nil, err
		}
		if req.Trials < 0 || req.Options.Trials < 0 {
			return nil, fmt.Errorf("bad trials %d: must be non-negative (0 = default)", min(req.Trials, req.Options.Trials))
		}
		if req.Trials > maxTrials || req.Options.Trials > maxTrials {
			return nil, fmt.Errorf("bad trials %d: at most %d", max(req.Trials, req.Options.Trials), maxTrials)
		}
		trials, routeName, passes, webhook = req.Trials, req.Route, req.Passes, req.Webhook
		fleetSpecs = req.Fleet
	} else {
		src = string(body)
		devName = r.URL.Query().Get("device")
		if opts, err = queryOptions(r); err != nil {
			return nil, err
		}
		routeName = r.URL.Query().Get("route")
		if v := r.URL.Query().Get("passes"); v != "" {
			passes = strings.Split(v, ",")
		}
		webhook = r.URL.Query().Get("webhook")
		if v := r.URL.Query().Get("fleet"); v != "" {
			fleetSpecs = strings.Split(v, ",")
		}
	}
	// Invalid requests are the client's fault: reject every bad
	// trials/route/passes/webhook value with a 400 here, before the
	// job can reach the engine (whose failures map to 422).
	if err := pipeline.PostRouting(passes); err != nil {
		return nil, err
	}
	if _, err := route.Canonical(routeName); err != nil {
		return nil, err
	}
	if err := validWebhook(webhook); err != nil {
		return nil, err
	}
	// A fleet request delegates the device choice to the scheduler; an
	// explicit device alongside it is contradictory.
	var fleetDevs []*arch.Device
	if len(fleetSpecs) > 0 {
		if devName != "" {
			return nil, fmt.Errorf("device %q and fleet are mutually exclusive: the scheduler picks the device", devName)
		}
		for _, spec := range fleetSpecs {
			d, err := s.device(spec)
			if err != nil {
				return nil, fmt.Errorf("fleet: %w", err)
			}
			fleetDevs = append(fleetDevs, d)
		}
		devName = fleetSpecs[0] // placeholder until scheduleFleet rebinds
	}
	if devName == "" {
		devName = "tokyo"
	}

	dev, err := s.device(devName)
	if err != nil {
		return nil, err
	}
	circ, err := qasm.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse QASM: %w", err)
	}
	return &compileInput{
		circ: circ, dev: dev, opts: opts,
		trials: trials, route: routeName, passes: passes, webhook: webhook,
		devSpec: devName, fleetDevs: fleetDevs, fleetSpecs: fleetSpecs,
	}, nil
}

// validWebhook accepts empty or an absolute http(s) URL.
func validWebhook(raw string) error {
	if raw == "" {
		return nil
	}
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("bad webhook %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("bad webhook %q: need an absolute http(s) URL", raw)
	}
	return nil
}

// buildCompileResponse renders an engine result exactly as /compile
// always has; the async poll/webhook paths reuse it so their payloads
// are byte-identical to the synchronous endpoint's.
func buildCompileResponse(in *compileInput, res *batch.Result) compileResponse {
	out := buildCompileSummary(in, res)
	out.QASM = qasm.Format(res.Final)
	return out
}

// buildCompileSummary is buildCompileResponse without the QASM
// rendering — the job-list view, where serializing every retained
// circuit per dashboard poll would be pure waste.
func buildCompileSummary(in *compileInput, res *batch.Result) compileResponse {
	rep := metrics.Compare(in.circ, res.Final)
	orig := metrics.Measure(in.circ)
	return compileResponse{
		Name:          in.circ.Name(),
		Device:        in.dev.Name(),
		DeviceQubits:  in.dev.NumQubits(),
		OriginalGates: orig.Gates,
		OriginalDepth: orig.Depth,
		Swaps:         res.SwapCount,
		Bridges:       res.BridgeCount,
		AddedGates:    res.AddedGates,
		Gates:         rep.Gates,
		Depth:         rep.Depth,
		InitialLayout: res.InitialLayout,
		FinalLayout:   res.FinalLayout,
		CacheHit:      res.CacheHit,
		Key:           hex.EncodeToString(res.Key[:8]),
		ElapsedNS:     res.Elapsed.Nanoseconds(),
		CalVersion:    res.CalVersion,
		Fleet:         fleetJSONOf(in.fleet),
		Passes:        passMetrics(res.PassMetrics),
	}
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if mode, err := streamMode(r); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if mode != "" {
		s.handleCompileStream(w, r, mode)
		return
	}
	in, err := s.parseCompile(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.scheduleFleet(in); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// The request context rides along: a disconnected client cancels
	// the job, and an in-flight compile stops within one SWAP round
	// instead of burning a worker on a dead request.
	res := <-s.eng.SubmitContext(r.Context(), in.batchJob())
	if res.Err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nothing to write
		}
		http.Error(w, res.Err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, buildCompileResponse(in, &res))
}

func (s *server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"named":         []string{"tokyo", "qx5", "falcon27"},
		"parameterized": []string{"line:<n>", "ring:<n>", "star:<n>", "full:<n>", "grid:<r>x<c>", "sycamore:<r>x<c>", "aspen:<octagons>"},
		"routers":       route.Names(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]any{
		"jobs":     st.Jobs,
		"compiles": st.Compiles,
		"hits":     st.Hits,
		"shared":   st.Shared,
		"errors":   st.Errors,
		"cached":   st.Cached,
		"workers":  s.eng.Workers(),
		"uptime_s": int64(time.Since(s.start).Seconds()),
		"queue":    s.queue.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// maxCachedDevices bounds the device memo: specs are client-chosen
// and each device carries an O(n²) distance matrix, so an unbounded
// map would let a client exhaust memory by enumerating specs. Past
// the cap, devices are built per request and not retained.
const maxCachedDevices = 64

// device resolves (and memoizes) a device spec. Construction happens
// outside the lock — building a large device runs Floyd–Warshall and
// must not stall every other request's lookup; the worst case is two
// concurrent requests building the same device once each.
func (s *server) device(spec string) (*arch.Device, error) {
	key := strings.ToLower(strings.TrimSpace(spec))
	s.mu.Lock()
	d, ok := s.devices[key]
	s.mu.Unlock()
	if ok {
		return d, nil
	}
	d, err := buildDevice(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev, ok := s.devices[key]; ok {
		d = prev // keep the first build so pointers stay stable
	} else if len(s.devices) < maxCachedDevices {
		s.devices[key] = d
	}
	s.mu.Unlock()
	return d, nil
}

// buildDevice constructs a device from its spec string (the shared
// vocabulary lives in arch.FromSpec; the daemon only adds the /devices
// hint to errors).
func buildDevice(spec string) (*arch.Device, error) {
	d, err := arch.FromSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%v (see /devices)", err)
	}
	return d, nil
}

// toCore converts the JSON options to core.Options, starting from the
// paper's defaults.
func (o optionsRequest) toCore() (core.Options, error) {
	opts := core.DefaultOptions()
	if o.Heuristic != "" {
		h, err := parseHeuristic(o.Heuristic)
		if err != nil {
			return opts, err
		}
		opts.Heuristic = h
	}
	if o.ExtendedSetSize > 0 {
		opts.ExtendedSetSize = o.ExtendedSetSize
	}
	if o.ExtendedSetWeight > 0 {
		opts.ExtendedSetWeight = o.ExtendedSetWeight
	}
	if o.DecayDelta > 0 {
		opts.DecayDelta = o.DecayDelta
	}
	if o.Trials > 0 {
		opts.Trials = o.Trials
	}
	if o.Traversals > 0 {
		opts.Traversals = o.Traversals
	}
	opts.Seed = o.Seed
	opts.UseBridge = o.UseBridge
	return opts, nil
}

// queryOptions builds options from ?seed=&trials=&bridge=&heuristic=.
func queryOptions(r *http.Request) (core.Options, error) {
	opts := core.DefaultOptions()
	opts.Seed = 0
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed %q", v)
		}
		opts.Seed = n
	}
	if v := q.Get("trials"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxTrials {
			return opts, fmt.Errorf("bad trials %q (1..%d)", v, maxTrials)
		}
		opts.Trials = n
	}
	if v := q.Get("bridge"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad bridge %q", v)
		}
		opts.UseBridge = b
	}
	if v := q.Get("heuristic"); v != "" {
		h, err := parseHeuristic(v)
		if err != nil {
			return opts, err
		}
		opts.Heuristic = h
	}
	return opts, nil
}

func parseHeuristic(name string) (core.Heuristic, error) {
	switch strings.ToLower(name) {
	case "basic":
		return core.HeuristicBasic, nil
	case "lookahead":
		return core.HeuristicLookahead, nil
	case "decay":
		return core.HeuristicDecay, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (basic|lookahead|decay)", name)
}
