// Command sabred is a compilation daemon: it serves SABRE qubit
// mapping over HTTP/JSON on top of the concurrent batch engine
// (bounded worker pool + sharded LRU result cache), so heavy circuit
// traffic compiles as fast as the hardware allows and repeated
// circuits are served from memory.
//
//	sabred -addr :8037 -workers 8 -cache 4096
//
// Endpoints:
//
//	POST /compile?device=tokyo[&seed=7&trials=5&bridge=1&heuristic=decay&route=anneal&passes=peephole,basis]
//	    Body: OpenQASM 2.0 source (or, with Content-Type
//	    application/json, {"qasm": "...", "device": "...",
//	    "options": {...}, "trials": 8, "route": "tokenswap",
//	    "passes": ["peephole"]}).
//	    Returns routed QASM plus metrics, including per-pass
//	    timing/gate/depth snapshots. Cancelled requests (client
//	    disconnects) stop compiling at the next trial boundary.
//	GET  /devices    topology catalogue (incl. parameterized forms)
//	GET  /stats      engine counters (jobs, cache hits, ...)
//	GET  /healthz    liveness probe
//
// Devices: tokyo (ibmq20), qx5, falcon27, plus parameterized
// line:<n>, ring:<n>, star:<n>, full:<n>, grid:<r>x<c>,
// sycamore:<r>x<c>, aspen:<octagons>.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/qasm"
	"repro/internal/route"
)

func main() {
	var (
		addr         = flag.String("addr", ":8037", "listen address")
		workers      = flag.Int("workers", 0, "compilation workers (0 = GOMAXPROCS)")
		trialWorkers = flag.Int("trial-workers", 0, "per-request routing-trial fan-out (0 = GOMAXPROCS)")
		cache        = flag.Int("cache", 4096, "result-cache entries (negative disables)")
		seed         = flag.Int64("seed", 1, "base seed for derived per-job seeds")
		patience     = flag.Int("patience", 0, "adaptive routing trials: stop after this many consecutive non-improving seeds (0 = exhaustive)")
	)
	flag.Parse()

	if *trialWorkers <= 0 {
		// A daemon serves sparse single-circuit requests: parallelise
		// each request's best-of-N trials, not just across requests.
		*trialWorkers = runtime.GOMAXPROCS(0)
	}
	eng := batch.NewEngine(batch.Config{Workers: *workers, CacheEntries: *cache, BaseSeed: *seed, TrialWorkers: *trialWorkers, TrialPatience: *patience})
	defer eng.Close()

	srv := newServer(eng)
	log.Printf("sabred: listening on %s (%d workers, cache %d)", *addr, eng.Workers(), *cache)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// maxBodyBytes bounds a compile request body (large arithmetic
// benchmarks are ~1 MB of QASM; 16 MB leaves ample headroom).
const maxBodyBytes = 16 << 20

// maxTrials bounds the client-requested best-of-N fan-out: the trial
// runner allocates O(trials) slices and channel capacity up front, so
// an unchecked huge value is a memory/CPU DoS. 10k is far above any
// useful restart schedule (the paper uses 5).
const maxTrials = 10_000

// server carries the shared engine and a construct-once device cache
// (device construction runs Floyd–Warshall, worth amortizing).
type server struct {
	eng   *batch.Engine
	start time.Time

	mu      sync.Mutex
	devices map[string]*arch.Device
}

func newServer(eng *batch.Engine) *server {
	return &server{eng: eng, start: time.Now(), devices: make(map[string]*arch.Device)}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/devices", s.handleDevices)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// compileRequest is the JSON envelope form of a compile request.
type compileRequest struct {
	QASM    string         `json:"qasm"`
	Device  string         `json:"device"`
	Options optionsRequest `json:"options"`

	// Trials overrides the best-of-N routing fan-out (options.trials
	// also works; this wins when both are set).
	Trials int `json:"trials,omitempty"`
	// Route names the routing backend from the router registry:
	// sabre (default), greedy, astar, anneal, tokenswap.
	Route string `json:"route,omitempty"`
	// Passes names post-routing pipeline passes to run in order:
	// basis, peephole, schedule, verify.
	Passes []string `json:"passes,omitempty"`
}

// optionsRequest exposes the result-affecting SABRE knobs; zero fields
// keep the paper's defaults.
type optionsRequest struct {
	Heuristic         string  `json:"heuristic,omitempty"`
	ExtendedSetSize   int     `json:"extended_set_size,omitempty"`
	ExtendedSetWeight float64 `json:"extended_set_weight,omitempty"`
	DecayDelta        float64 `json:"decay_delta,omitempty"`
	Trials            int     `json:"trials,omitempty"`
	Traversals        int     `json:"traversals,omitempty"`
	Seed              int64   `json:"seed,omitempty"`
	UseBridge         bool    `json:"use_bridge,omitempty"`
}

// compileResponse reports the routed circuit and the paper's metrics.
type compileResponse struct {
	Name          string `json:"name,omitempty"`
	Device        string `json:"device"`
	DeviceQubits  int    `json:"device_qubits"`
	OriginalGates int    `json:"original_gates"`
	OriginalDepth int    `json:"original_depth"`
	Swaps         int    `json:"swaps"`
	Bridges       int    `json:"bridges"`
	AddedGates    int    `json:"added_gates"`
	Gates         int    `json:"gates"`
	Depth         int    `json:"depth"`
	InitialLayout []int  `json:"initial_layout"`
	FinalLayout   []int  `json:"final_layout"`
	CacheHit      bool   `json:"cache_hit"`
	Key           string `json:"key"`
	ElapsedNS     int64  `json:"elapsed_ns"`

	// Passes instruments the pipeline: one entry per executed pass
	// (route plus any requested post-routing passes) with wall-clock
	// time and gate/depth snapshots.
	Passes []passMetricJSON `json:"passes"`

	QASM string `json:"qasm"`
}

// passMetricJSON is the wire form of one pass metric.
type passMetricJSON struct {
	Pass      string `json:"pass"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Gates     int    `json:"gates"`
	Depth     int    `json:"depth"`
}

func passMetrics(ms []pipeline.PassMetric) []passMetricJSON {
	out := make([]passMetricJSON, len(ms))
	for i, m := range ms {
		out[i] = passMetricJSON{Pass: m.Pass, ElapsedNS: m.Elapsed.Nanoseconds(), Gates: m.Gates, Depth: m.Depth}
	}
	return out
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}

	var (
		src       string
		devName   string
		opts      core.Options
		trials    int
		routeName string
		passes    []string
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req compileRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		src, devName = req.QASM, req.Device
		if devName == "" {
			devName = r.URL.Query().Get("device")
		}
		if opts, err = req.Options.toCore(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Trials < 0 || req.Options.Trials < 0 {
			http.Error(w, fmt.Sprintf("bad trials %d: must be non-negative (0 = default)", min(req.Trials, req.Options.Trials)), http.StatusBadRequest)
			return
		}
		if req.Trials > maxTrials || req.Options.Trials > maxTrials {
			http.Error(w, fmt.Sprintf("bad trials %d: at most %d", max(req.Trials, req.Options.Trials), maxTrials), http.StatusBadRequest)
			return
		}
		trials, routeName, passes = req.Trials, req.Route, req.Passes
	} else {
		src = string(body)
		devName = r.URL.Query().Get("device")
		if opts, err = queryOptions(r); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		routeName = r.URL.Query().Get("route")
		if v := r.URL.Query().Get("passes"); v != "" {
			passes = strings.Split(v, ",")
		}
	}
	// Invalid requests are the client's fault: reject every bad
	// trials/route/passes value with a 400 here, before the job can
	// reach the engine (whose failures map to 422).
	if err := pipeline.PostRouting(passes); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := route.Canonical(routeName); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if devName == "" {
		devName = "tokyo"
	}

	dev, err := s.device(devName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	circ, err := qasm.Parse(src)
	if err != nil {
		http.Error(w, "parse QASM: "+err.Error(), http.StatusBadRequest)
		return
	}

	// The request context rides along: a disconnected client cancels
	// the job, and an in-flight compile stops at its next trial
	// boundary instead of burning a worker on a dead request.
	res := <-s.eng.SubmitContext(r.Context(), batch.Job{
		Circuit: circ, Device: dev, Options: opts, Trials: trials, Route: routeName, Passes: passes,
	})
	if res.Err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nothing to write
		}
		http.Error(w, res.Err.Error(), http.StatusUnprocessableEntity)
		return
	}

	rep := metrics.Compare(circ, res.Final)
	orig := metrics.Measure(circ)
	writeJSON(w, compileResponse{
		Name:          circ.Name(),
		Device:        dev.Name(),
		DeviceQubits:  dev.NumQubits(),
		OriginalGates: orig.Gates,
		OriginalDepth: orig.Depth,
		Swaps:         res.SwapCount,
		Bridges:       res.BridgeCount,
		AddedGates:    res.AddedGates,
		Gates:         rep.Gates,
		Depth:         rep.Depth,
		InitialLayout: res.InitialLayout,
		FinalLayout:   res.FinalLayout,
		CacheHit:      res.CacheHit,
		Key:           hex.EncodeToString(res.Key[:8]),
		ElapsedNS:     res.Elapsed.Nanoseconds(),
		Passes:        passMetrics(res.PassMetrics),
		QASM:          qasm.Format(res.Final),
	})
}

func (s *server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"named":         []string{"tokyo", "qx5", "falcon27"},
		"parameterized": []string{"line:<n>", "ring:<n>", "star:<n>", "full:<n>", "grid:<r>x<c>", "sycamore:<r>x<c>", "aspen:<octagons>"},
		"routers":       route.Names(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]any{
		"jobs":     st.Jobs,
		"compiles": st.Compiles,
		"hits":     st.Hits,
		"shared":   st.Shared,
		"errors":   st.Errors,
		"cached":   st.Cached,
		"workers":  s.eng.Workers(),
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// maxCachedDevices bounds the device memo: specs are client-chosen
// and each device carries an O(n²) distance matrix, so an unbounded
// map would let a client exhaust memory by enumerating specs. Past
// the cap, devices are built per request and not retained.
const maxCachedDevices = 64

// device resolves (and memoizes) a device spec. Construction happens
// outside the lock — building a large device runs Floyd–Warshall and
// must not stall every other request's lookup; the worst case is two
// concurrent requests building the same device once each.
func (s *server) device(spec string) (*arch.Device, error) {
	key := strings.ToLower(strings.TrimSpace(spec))
	s.mu.Lock()
	d, ok := s.devices[key]
	s.mu.Unlock()
	if ok {
		return d, nil
	}
	d, err := buildDevice(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev, ok := s.devices[key]; ok {
		d = prev // keep the first build so pointers stay stable
	} else if len(s.devices) < maxCachedDevices {
		s.devices[key] = d
	}
	s.mu.Unlock()
	return d, nil
}

// buildDevice constructs a device from its spec string.
func buildDevice(spec string) (*arch.Device, error) {
	switch spec {
	case "tokyo", "ibmq20", "q20":
		return arch.IBMQ20Tokyo(), nil
	case "qx5", "ibmqx5":
		return arch.IBMQX5(), nil
	case "falcon", "falcon27":
		return arch.IBMFalcon27(), nil
	}
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("unknown device %q (see /devices)", spec)
	}
	dims := func() (int, int, error) {
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return 0, 0, fmt.Errorf("device %q needs <rows>x<cols>", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return 0, 0, fmt.Errorf("device %q: bad dimensions %q", spec, arg)
		}
		return r, c, nil
	}
	switch kind {
	case "grid", "sycamore":
		r, c, err := dims()
		if err != nil {
			return nil, err
		}
		if r*c > 1024 {
			return nil, fmt.Errorf("device %q too large (max 1024 qubits)", spec)
		}
		if kind == "grid" {
			return arch.Grid(r, c), nil
		}
		return arch.Sycamore(r, c), nil
	case "line", "ring", "star", "full", "aspen":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > 1024 {
			return nil, fmt.Errorf("device %q: bad size %q", spec, arg)
		}
		switch kind {
		case "line":
			return arch.Line(n), nil
		case "ring":
			if n < 3 {
				return nil, fmt.Errorf("ring needs at least 3 qubits")
			}
			return arch.Ring(n), nil
		case "star":
			if n < 2 {
				return nil, fmt.Errorf("star needs at least 2 qubits")
			}
			return arch.Star(n), nil
		case "full":
			return arch.FullyConnected(n), nil
		default:
			if n > 16 {
				return nil, fmt.Errorf("aspen supports at most 16 octagons")
			}
			return arch.RigettiAspen(n), nil
		}
	}
	return nil, fmt.Errorf("unknown device %q (see /devices)", spec)
}

// toCore converts the JSON options to core.Options, starting from the
// paper's defaults.
func (o optionsRequest) toCore() (core.Options, error) {
	opts := core.DefaultOptions()
	if o.Heuristic != "" {
		h, err := parseHeuristic(o.Heuristic)
		if err != nil {
			return opts, err
		}
		opts.Heuristic = h
	}
	if o.ExtendedSetSize > 0 {
		opts.ExtendedSetSize = o.ExtendedSetSize
	}
	if o.ExtendedSetWeight > 0 {
		opts.ExtendedSetWeight = o.ExtendedSetWeight
	}
	if o.DecayDelta > 0 {
		opts.DecayDelta = o.DecayDelta
	}
	if o.Trials > 0 {
		opts.Trials = o.Trials
	}
	if o.Traversals > 0 {
		opts.Traversals = o.Traversals
	}
	opts.Seed = o.Seed
	opts.UseBridge = o.UseBridge
	return opts, nil
}

// queryOptions builds options from ?seed=&trials=&bridge=&heuristic=.
func queryOptions(r *http.Request) (core.Options, error) {
	opts := core.DefaultOptions()
	opts.Seed = 0
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed %q", v)
		}
		opts.Seed = n
	}
	if v := q.Get("trials"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxTrials {
			return opts, fmt.Errorf("bad trials %q (1..%d)", v, maxTrials)
		}
		opts.Trials = n
	}
	if v := q.Get("bridge"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad bridge %q", v)
		}
		opts.UseBridge = b
	}
	if v := q.Get("heuristic"); v != "" {
		h, err := parseHeuristic(v)
		if err != nil {
			return opts, err
		}
		opts.Heuristic = h
	}
	return opts, nil
}

func parseHeuristic(name string) (core.Heuristic, error) {
	switch strings.ToLower(name) {
	case "basic":
		return core.HeuristicBasic, nil
	case "lookahead":
		return core.HeuristicLookahead, nil
	case "decay":
		return core.HeuristicDecay, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (basic|lookahead|decay)", name)
}
