package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

// postJSON submits a JSON-envelope request to path and decodes a
// jobResponse when the status is 2xx.
func postJobJSON(t *testing.T, url string, req compileRequest) (*http.Response, jobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobResponse
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// pollJob GETs the job until it is terminal.
func pollJob(t *testing.T, base, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		var out jobResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if out.State.Terminal() {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, out.State)
		}
	}
}

// TestJobsAsyncMatchesSyncCompile is the v2 acceptance check: the
// same request through POST /jobs (poll path) and POST /compile must
// produce byte-identical QASM and identical metrics.
func TestJobsAsyncMatchesSyncCompile(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.QFT(8))
	req := compileRequest{QASM: src, Device: "tokyo", Passes: []string{"verify"}, Options: optionsRequest{Seed: 11}}

	resp, job := postJobJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if job.ID == "" || job.State != jobqueue.StateQueued {
		t.Fatalf("submit response: %+v", job)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}

	done := pollJob(t, ts.URL, job.ID)
	if done.State != jobqueue.StateDone || done.Result == nil {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	syncResp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer syncResp.Body.Close()
	var sync compileResponse
	if err := json.NewDecoder(syncResp.Body).Decode(&sync); err != nil {
		t.Fatal(err)
	}

	async := *done.Result
	if async.QASM != sync.QASM {
		t.Fatal("async QASM differs from synchronous QASM for the identical request")
	}
	if async.Gates != sync.Gates || async.Depth != sync.Depth || async.AddedGates != sync.AddedGates || async.Key != sync.Key {
		t.Fatalf("async metrics differ: async={g:%d d:%d add:%d key:%s} sync={g:%d d:%d add:%d key:%s}",
			async.Gates, async.Depth, async.AddedGates, async.Key,
			sync.Gates, sync.Depth, sync.AddedGates, sync.Key)
	}
	if fmt.Sprint(async.InitialLayout) != fmt.Sprint(sync.InitialLayout) ||
		fmt.Sprint(async.FinalLayout) != fmt.Sprint(sync.FinalLayout) {
		t.Fatal("async layouts differ from synchronous layouts")
	}
}

// TestJobsWebhookDelivery: the webhook body is the same jobResponse a
// poller reads, with the full compile result embedded.
func TestJobsWebhookDelivery(t *testing.T) {
	got := make(chan jobResponse, 1)
	var hits atomic.Int64
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var jr jobResponse
		if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
			t.Errorf("webhook decode: %v", err)
		}
		if hits.Add(1) == 1 {
			got <- jr
		}
	}))
	defer ws.Close()

	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(6))
	resp, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src, Device: "tokyo", Webhook: ws.URL})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	select {
	case hook := <-got:
		if hook.ID != job.ID || hook.State != jobqueue.StateDone {
			t.Fatalf("webhook payload: id=%s state=%s", hook.ID, hook.State)
		}
		if hook.Result == nil || hook.Result.QASM == "" {
			t.Fatal("webhook payload missing the compile result")
		}
		polled := pollJob(t, ts.URL, job.ID)
		if polled.Result == nil || polled.Result.QASM != hook.Result.QASM {
			t.Fatal("webhook QASM differs from polled QASM")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("webhook never delivered")
	}
}

// TestJobsCancel: DELETE cancels a running job promptly.
func TestJobsCancel(t *testing.T) {
	ts, _ := newTestServer(t)
	// A deliberately heavy job: big random circuit, many trials.
	src := qasm.Format(workloads.RandomCircuit("heavy", 20, 8000, 0.9, 1))
	resp, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src, Device: "tokyo", Trials: 40})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	out := pollJob(t, ts.URL, job.ID)
	if out.State != jobqueue.StateCancelled {
		t.Fatalf("state after cancel = %s", out.State)
	}
	if out.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
}

// TestJobsListAndStats: the collection endpoint reports jobs (QASM
// trimmed) and counters.
func TestJobsListAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(5))
	_, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src, Device: "tokyo"})
	pollJob(t, ts.URL, job.ID)

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs  []jobResponse  `json:"jobs"`
		Stats jobqueue.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].ID != job.ID {
		t.Fatalf("list = %+v", out.Jobs)
	}
	if out.Jobs[0].Result == nil || out.Jobs[0].Result.QASM != "" {
		t.Fatal("list must carry the result summary with QASM trimmed")
	}
	if out.Stats.Submitted != 1 || out.Stats.Done != 1 {
		t.Fatalf("stats = %+v", out.Stats)
	}

	// /stats carries the queue block too.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["queue"]; !ok {
		t.Fatal("/stats missing queue counters")
	}
}

// TestJobsRejections: the async endpoint rejects exactly what the
// synchronous one rejects, plus async-specific forms.
func TestJobsRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(4))

	cases := []struct {
		name string
		req  compileRequest
		want int
	}{
		{"bad route", compileRequest{QASM: src, Route: "warp-drive"}, http.StatusBadRequest},
		{"bad pass", compileRequest{QASM: src, Passes: []string{"layout"}}, http.StatusBadRequest},
		{"bad trials", compileRequest{QASM: src, Trials: -1}, http.StatusBadRequest},
		{"bad webhook", compileRequest{QASM: src, Webhook: "ftp://nope"}, http.StatusBadRequest},
		{"bad qasm", compileRequest{QASM: "not qasm"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postJobJSON(t, ts.URL+"/jobs", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unknown job: 404 on poll and cancel; bad wait: 400.
	resp, err := http.Get(ts.URL + "/jobs/job-missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown poll status %d", resp.StatusCode)
	}
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-missing", nil)
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d", dresp.StatusCode)
	}
	_, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src})
	wresp, err := http.Get(ts.URL + "/jobs/" + job.ID + "?wait=never")
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status %d", wresp.StatusCode)
	}
}

// TestJobsQueryFormSubmit: the raw-QASM + query-params form works on
// /jobs exactly as on /compile.
func TestJobsQueryFormSubmit(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(6))
	resp, err := http.Post(ts.URL+"/jobs?device=tokyo&seed=5&passes=verify", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var job jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts.URL, job.ID)
	if done.State != jobqueue.StateDone || done.Result == nil {
		t.Fatalf("job finished as %s (%s)", done.State, done.Error)
	}
	if _, err := qasm.Parse(done.Result.QASM); err != nil {
		t.Fatalf("result QASM does not parse: %v", err)
	}
}

// TestLongPollReleasedOnDrain: a parked ?wait= long-poll must return
// its current snapshot the moment the daemon begins draining, instead
// of pinning http.Shutdown for the rest of the wait window.
func TestLongPollReleasedOnDrain(t *testing.T) {
	ts, srv := newTestServer(t)
	src := qasm.Format(workloads.RandomCircuit("heavy", 20, 8000, 0.9, 1))
	resp, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src, Device: "tokyo", Trials: 40})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	type pollResult struct {
		job jobResponse
		err error
	}
	done := make(chan pollResult, 1)
	go func() {
		r, err := http.Get(ts.URL + "/jobs/" + job.ID + "?wait=60s")
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer r.Body.Close()
		var out jobResponse
		done <- pollResult{job: out, err: json.NewDecoder(r.Body).Decode(&out)}
	}()

	time.Sleep(50 * time.Millisecond) // let the poll park
	start := time.Now()
	close(srv.draining)
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("drained long-poll took %v to return", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("long-poll not released by drain signal")
	}
	// Unblock the worker so cleanup's queue.Close drains fast.
	if _, err := srv.queue.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
}
