package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/qasm"
	"repro/internal/workloads"
)

func TestCompileResponseCarriesPassMetrics(t *testing.T) {
	ts, _ := newTestServer(t)

	// Plain request: the route stage alone is instrumented.
	resp, out := postQASM(t, ts.URL+"/compile?device=tokyo&seed=5", qasm.Format(workloads.QFT(6)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Passes) != 1 || out.Passes[0].Pass != "route" {
		t.Fatalf("passes = %+v, want a single route entry", out.Passes)
	}
	if out.Passes[0].Gates <= 0 || out.Passes[0].Depth <= 0 {
		t.Fatalf("route metric has empty snapshot: %+v", out.Passes[0])
	}

	// Requesting passes via the query string runs and reports them.
	resp, out = postQASM(t, ts.URL+"/compile?device=tokyo&seed=5&passes=peephole,basis,verify",
		qasm.Format(workloads.QFT(6)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := []string{"route", "peephole", "basis", "verify"}
	if len(out.Passes) != len(want) {
		t.Fatalf("passes = %+v, want %v", out.Passes, want)
	}
	for i, m := range out.Passes {
		if m.Pass != want[i] {
			t.Fatalf("pass %d = %q, want %q", i, m.Pass, want[i])
		}
	}
	// Basis lowering means the returned QASM contains no symbolic swap.
	if strings.Contains(out.QASM, "swap") {
		t.Fatal("basis pass requested but returned QASM still has swaps")
	}
}

func TestCompileJSONEnvelopeTrialsAndPasses(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := json.Marshal(compileRequest{
		QASM:    qasm.Format(workloads.QFT(6)),
		Device:  "tokyo",
		Options: optionsRequest{Seed: 4},
		Trials:  7,
		Passes:  []string{"peephole", "verify"},
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(string(req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out compileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Passes) != 3 {
		t.Fatalf("passes = %+v, want route+peephole+verify", out.Passes)
	}
}

func TestCompileRejectsBadPass(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := postQASM(t, ts.URL+"/compile?device=tokyo&passes=route", qasm.Format(workloads.GHZ(4)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for a non-post-routing pass", resp.StatusCode)
	}
}

func TestClientDisconnectCancelsJob(t *testing.T) {
	ts, srv := newTestServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	// Heavy enough that the compile is reliably still in flight when
	// the client walks away 20ms in: the delta-scoring router finishes
	// a qft_18 trial in well under a millisecond, so small trial
	// counts complete before the cancellation can land.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/compile?device=tokyo&trials=10000&seed=99", strings.NewReader(qasm.Format(workloads.QFT(18))))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel() // client walks away mid-compile
	if err := <-errc; err == nil {
		t.Fatal("expected the cancelled request to fail client-side")
	}

	// The engine must not keep compiling: wait for the worker to
	// settle and check no result was produced for the request.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.eng.Stats()
		if st.Jobs >= 1 && st.Errors >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("engine never recorded the cancelled job as an error: %+v", srv.eng.Stats())
}
