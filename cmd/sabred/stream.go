package main

// Streaming compile transport.
//
// POST /compile?stream=1 routes the request body through the windowed
// streaming compiler: the QASM is parsed incrementally off the wire
// (no whole-file AST, no body cap), routed gates are written back as
// they retire, and the response is flushed after every chunk — a
// million-gate trace compiles in O(device + window) daemon memory and
// the client sees output before the input has finished uploading.
//
//	POST /compile?stream=1&device=tokyo[&seed=7&chunk=1024&lookahead=256&window=4096]
//	    Body: OpenQASM 2.0 source, any length. JSON envelopes are not
//	    accepted on the streaming path (the body IS the gate stream).
//	    Response: 200, Content-Type text/plain, the routed program as
//	    incrementally flushed OpenQASM 2.0. Routing statistics arrive
//	    as HTTP trailers after the final chunk:
//	        X-Sabre-Swaps, X-Sabre-Bridges, X-Sabre-Gates-In,
//	        X-Sabre-Gates-Out, X-Sabre-Chunks, X-Sabre-Max-Window,
//	        X-Sabre-Gates-Per-Sec
//	    A request that fails before the first chunk (bad device, bad
//	    options) gets a normal error status; client disconnect before
//	    the first chunk maps to 499. Once bytes are on the wire the
//	    status is committed, so a mid-stream failure — parse error a
//	    megabyte into the body, client gone — aborts the connection:
//	    consumers must treat a response without trailers as torn.
//	    stream=materialized selects the materialized-DAG oracle (same
//	    output bytes, whole-circuit memory) for differential testing.
//
// POST /jobs?stream=1 parks the same compilation on the async queue:
// the routed program is pushed to the mandatory webhook chunk by
// chunk (X-Sabre-Chunk orders them; the concatenation is one complete
// program), with the usual terminal webhook delivery carrying the
// stream statistics. Durable queues (-job-log) refuse streaming jobs.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/jobqueue"
	"repro/internal/qasm"
)

// statusClientClosedRequest is nginx's nonstandard 499: the client
// disconnected before the daemon wrote a response.
const statusClientClosedRequest = 499

// streamMode classifies the ?stream= query value. Empty means the
// request is not a streaming request.
func streamMode(r *http.Request) (string, error) {
	v := strings.ToLower(r.URL.Query().Get("stream"))
	switch v {
	case "", "0", "false":
		return "", nil
	case "1", "true", "windowed":
		return "windowed", nil
	case "materialized":
		return "materialized", nil
	}
	return "", fmt.Errorf("bad stream %q (1|materialized)", v)
}

// streamQueryOptions builds core.StreamOptions from ?window=,
// ?lookahead=, ?chunk=. Zero/absent fields keep the defaults.
func streamQueryOptions(r *http.Request) (core.StreamOptions, error) {
	var sopts core.StreamOptions
	q := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *int
	}{{"window", &sopts.Window}, {"lookahead", &sopts.Lookahead}, {"chunk", &sopts.ChunkGates}} {
		v := q.Get(p.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return sopts, fmt.Errorf("bad %s %q: want a non-negative integer", p.name, v)
		}
		*p.dst = n
	}
	return sopts, nil
}

// countingWriter holds response bytes back until the first chunk
// commits the stream. The QASM stream writer emits its header at
// construction — before a single gate has routed — so writing through
// eagerly would commit a 200 even for requests that die on the first
// statement. Buffering until the first chunk keeps the line between
// "send a clean error status" and "abort the torn stream" where it
// belongs: at the first routed gate on the wire.
type countingWriter struct {
	w     io.Writer
	f     http.Flusher
	buf   bytes.Buffer
	wrote bool
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if !c.wrote {
		return c.buf.Write(p)
	}
	return c.w.Write(p)
}

// commit flushes the held-back prefix (header + first chunk) to the
// wire and switches to pass-through writes.
func (c *countingWriter) commit() error {
	if !c.wrote {
		c.wrote = true
		if c.buf.Len() > 0 {
			if _, err := c.w.Write(c.buf.Bytes()); err != nil {
				return err
			}
			c.buf.Reset()
		}
	}
	if c.f != nil {
		c.f.Flush()
	}
	return nil
}

// handleCompileStream serves POST /compile?stream=1|materialized.
func (s *server) handleCompileStream(w http.ResponseWriter, r *http.Request, mode string) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		http.Error(w, "streaming compiles take raw QASM bodies, not JSON envelopes", http.StatusBadRequest)
		return
	}
	devName := r.URL.Query().Get("device")
	if devName == "" {
		devName = "tokyo"
	}
	dev, err := s.device(devName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sopts, err := streamQueryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Trailers must be declared before the first body write.
	w.Header().Set("Trailer", strings.Join([]string{
		"X-Sabre-Swaps", "X-Sabre-Bridges", "X-Sabre-Gates-In", "X-Sabre-Gates-Out",
		"X-Sabre-Chunks", "X-Sabre-Max-Window", "X-Sabre-Gates-Per-Sec",
	}, ", "))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w, f: flusher}
	onChunk := func(int64) error { return cw.commit() }

	var res *core.StreamResult
	switch mode {
	case "windowed":
		// The body is never materialized: the scanner pulls statements
		// off the wire as the router consumes them, so there is no body
		// cap on this path. Interleaving body reads with response writes
		// needs full duplex on HTTP/1.x — without it the server discards
		// the rest of the body at the first flush. HTTP/2 is duplex
		// already, so a not-supported error is fine to ignore.
		_ = http.NewResponseController(w).EnableFullDuplex()
		res, err = s.eng.CompileQASMStream(r.Context(), r.Body,
			batch.StreamJob{Device: dev, Options: opts, Stream: sopts}, cw, onChunk)
	default: // materialized oracle: whole-circuit memory, same bytes
		res, err = s.compileStreamMaterialized(r.Context(), r, dev, opts, sopts, cw, onChunk)
	}
	if err != nil {
		if cw.wrote {
			// Bytes are on the wire under a committed 200: the only
			// honest failure mode left is a torn response. Aborting the
			// connection guarantees no trailers, which is the signal
			// consumers must check.
			panic(http.ErrAbortHandler)
		}
		if r.Context().Err() != nil {
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := res.Stats
	w.Header().Set("X-Sabre-Swaps", strconv.Itoa(st.SwapCount))
	w.Header().Set("X-Sabre-Bridges", strconv.Itoa(st.BridgeCount))
	w.Header().Set("X-Sabre-Gates-In", strconv.FormatInt(st.GatesIn, 10))
	w.Header().Set("X-Sabre-Gates-Out", strconv.FormatInt(st.GatesOut, 10))
	w.Header().Set("X-Sabre-Chunks", strconv.Itoa(st.Chunks))
	w.Header().Set("X-Sabre-Max-Window", strconv.Itoa(st.MaxWindow))
	w.Header().Set("X-Sabre-Gates-Per-Sec", strconv.FormatFloat(st.GatesPerSec, 'f', 0, 64))
	// A gate-free program never fires a chunk callback; release the
	// held-back header so the response is still a complete program.
	_ = cw.commit()
}

// compileStreamMaterialized is the oracle arm of the streaming
// endpoint: it parses the whole body (bounded, like /compile) and
// routes it through core.RouteStreamMaterialized, emitting through
// the same incremental writer so the output bytes are identical to
// the windowed path — which is the point: differential testing over
// HTTP without touching the daemon's internals.
func (s *server) compileStreamMaterialized(ctx context.Context, r *http.Request, dev *arch.Device, opts core.Options, sopts core.StreamOptions, w io.Writer, onChunk func(int64) error) (*core.StreamResult, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	circ, err := qasm.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("parse QASM: %w", err)
	}
	sink := &qasmHTTPSink{w: qasm.NewStreamWriter(w, dev.NumQubits()), onChunk: onChunk}
	res, err := core.RouteStreamMaterialized(ctx, circ, dev, opts, sopts, sink)
	if err != nil {
		return nil, err
	}
	return res, sink.w.Flush()
}

// qasmHTTPSink mirrors the engine's QASM sink for the oracle arm:
// serialize the chunk, then fire the flush callback.
type qasmHTTPSink struct {
	w       *qasm.StreamWriter
	onChunk func(int64) error
	emitted int64
}

func (s *qasmHTTPSink) Emit(gates []circuit.Gate) error {
	if err := s.w.WriteGates(gates); err != nil {
		return err
	}
	s.emitted += int64(len(gates))
	if s.onChunk != nil {
		return s.onChunk(s.emitted)
	}
	return nil
}

// handleJobSubmitStream serves POST /jobs?stream=1: the body is the
// QASM gate stream, ?webhook= is mandatory (chunks are delivered
// through it), and the job queue streams the routed program out as
// the compilation progresses. 202 Accepted mirrors the unit-job path.
func (s *server) handleJobSubmitStream(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		http.Error(w, "streaming jobs take raw QASM bodies, not JSON envelopes", http.StatusBadRequest)
		return
	}
	devName := r.URL.Query().Get("device")
	if devName == "" {
		devName = "tokyo"
	}
	dev, err := s.device(devName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sopts, err := streamQueryOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	webhook := r.URL.Query().Get("webhook")
	if err := validWebhook(webhook); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if webhook == "" {
		http.Error(w, "streaming jobs require ?webhook=: routed chunks are delivered through it", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	snap, err := s.queue.SubmitStream(jobqueue.Request{
		Job:     batch.Job{Device: dev, Options: opts},
		Webhook: webhook,
	}, jobqueue.StreamSpec{QASM: string(body), Options: sopts})
	if err != nil {
		status := http.StatusServiceUnavailable
		if strings.Contains(err.Error(), "durable") {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobResponseOf(snap, true))
}
