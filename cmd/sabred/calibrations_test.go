package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/qasm"
	"repro/internal/workloads"
)

// postCalibration POSTs a calibrationRequest and returns the response
// plus its decoded body (on 200) or raw error text.
func postCalibration(t *testing.T, url string, req calibrationRequest) (*http.Response, calibrationResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out calibrationResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode calibration response: %v (%s)", err, raw)
		}
	}
	return resp, out, string(raw)
}

// TestParseWaitCap: ?wait= windows above maxLongPoll are rejected with
// an error naming the cap — in both the duration and bare-seconds
// forms — not silently clamped.
func TestParseWaitCap(t *testing.T) {
	for _, ok := range []string{"", "0", "5", "30s", "1m", "60"} {
		if _, err := parseWait(ok); err != nil {
			t.Errorf("parseWait(%q) = %v, want nil", ok, err)
		}
	}
	for _, over := range []string{"90s", "2m", "61", "3600"} {
		_, err := parseWait(over)
		if err == nil {
			t.Errorf("parseWait(%q) accepted a window above the cap", over)
			continue
		}
		if !strings.Contains(err.Error(), maxLongPoll.String()) {
			t.Errorf("parseWait(%q) error %q does not name the %s cap", over, err, maxLongPoll)
		}
	}
}

// TestJobWaitCapHTTP: the rejection surfaces as a 400 on the wire.
func TestJobWaitCapHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, wait := range []string{"90s", "120"} {
		resp, err := http.Get(ts.URL + "/jobs/job-0-deadbeef?wait=" + wait)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait=%s: status %d, want 400 (%s)", wait, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), maxLongPoll.String()) {
			t.Fatalf("wait=%s: 400 body %q does not name the cap", wait, body)
		}
	}
}

// TestCalibrationEndpoint covers the /calibrations/{device} lifecycle:
// 404 before any push, versions that count up, GET reflecting the
// latest, and a 400 for every malformed push naming the problem.
func TestCalibrationEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	url := ts.URL + "/calibrations/line:4"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before any calibration: status %d, want 404", resp.StatusCode)
	}

	good := calibrationRequest{Default: 0.01, Edges: []calibrationEdge{{A: 0, B: 1, Error: 0.04}}}
	resp, out, raw := postCalibration(t, url, good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good POST: status %d (%s)", resp.StatusCode, raw)
	}
	if out.Version != 1 || out.Edges != 1 || out.Default != 0.01 {
		t.Fatalf("first snapshot = %+v, want version 1 / 1 edge", out)
	}
	if out.Applied.IsZero() {
		t.Fatal("snapshot has no applied timestamp")
	}

	resp, out, _ = postCalibration(t, url, calibrationRequest{Default: 0.02})
	if resp.StatusCode != http.StatusOK || out.Version != 2 {
		t.Fatalf("second POST: status %d version %d, want 200/2", resp.StatusCode, out.Version)
	}

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var got calibrationResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Version != 2 || got.Default != 0.02 {
		t.Fatalf("GET after two pushes = %+v, want version 2 default 0.02", got)
	}

	bad := []struct {
		name string
		url  string
		req  calibrationRequest
		want string // substring of the 400 body
	}{
		{"rate at 1", url, calibrationRequest{Default: 1.0}, "outside [0, 1)"},
		{"negative edge rate", url, calibrationRequest{Edges: []calibrationEdge{{A: 0, B: 1, Error: -0.1}}}, "outside [0, 1)"},
		{"non-coupler edge", url, calibrationRequest{Edges: []calibrationEdge{{A: 0, B: 3, Error: 0.1}}}, "no coupler"},
		{"duplicate edge", url, calibrationRequest{Edges: []calibrationEdge{{A: 0, B: 1, Error: 0.1}, {A: 1, B: 0, Error: 0.2}}}, "duplicate edge"},
		{"unknown device", ts.URL + "/calibrations/warp-core", calibrationRequest{Default: 0.01}, "unknown device"},
	}
	for _, tc := range bad {
		resp, _, raw := postCalibration(t, tc.url, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		if !strings.Contains(raw, tc.want) {
			t.Errorf("%s: 400 body %q does not mention %q", tc.name, raw, tc.want)
		}
	}

	// Malformed pushes must not have bumped the version.
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Version != 2 {
		t.Fatalf("version %d after rejected pushes, want still 2", got.Version)
	}

	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d, want 405", resp.StatusCode)
	}
}

// TestCompileRecalibrationCacheMiss is the end-to-end freshness check:
// a cached compile must NOT be served after the device is recalibrated
// — the new snapshot version changes the cache key.
func TestCompileRecalibrationCacheMiss(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.QFT(5))

	resp, first := postQASM(t, ts.URL+"/compile?device=line:5&seed=3", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.CacheHit || first.CalVersion != 0 {
		t.Fatalf("first compile: cache_hit=%v cal_version=%d, want fresh/0", first.CacheHit, first.CalVersion)
	}
	if resp, again := postQASM(t, ts.URL+"/compile?device=line:5&seed=3", src); resp.StatusCode != http.StatusOK || !again.CacheHit {
		t.Fatalf("resubmit before recalibration: status %d cache_hit=%v, want a hit", resp.StatusCode, again.CacheHit)
	}

	cal := calibrationRequest{Default: 0.001, Edges: []calibrationEdge{{A: 1, B: 2, Error: 0.3}}}
	if resp, _, raw := postCalibration(t, ts.URL+"/calibrations/line:5", cal); resp.StatusCode != http.StatusOK {
		t.Fatalf("calibration push: status %d (%s)", resp.StatusCode, raw)
	}

	resp, after := postQASM(t, ts.URL+"/compile?device=line:5&seed=3", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if after.CacheHit {
		t.Fatal("stale cached result served after recalibration")
	}
	if after.CalVersion != 1 {
		t.Fatalf("cal_version = %d after first calibration, want 1", after.CalVersion)
	}
}

// TestFleetCompile: a fleet request compiles on the scheduler's pick
// and reports the full score table; device+fleet together is a 400.
func TestFleetCompile(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(6))

	// JSON form.
	body := `{"qasm": "` + escaped(src) + `", "fleet": ["line:6", "full:6"]}`
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out compileResponse
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("fleet compile: status %d (%s)", resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Fleet == nil {
		t.Fatal("fleet compile response has no fleet field")
	}
	if len(out.Fleet.Scores) != 2 {
		t.Fatalf("score table has %d rows, want 2", len(out.Fleet.Scores))
	}
	if out.Device != out.Fleet.Device {
		t.Fatalf("compiled on %q but the fleet winner is %q", out.Device, out.Fleet.Device)
	}
	// GHZ(6) on a fully connected chip needs no SWAPs at all; the
	// all-to-all candidate must beat the line on predicted error.
	if !strings.Contains(out.Device, "full") {
		t.Fatalf("winner %q, want the fully connected candidate (scores %+v)", out.Device, out.Fleet.Scores)
	}
	if out.Swaps != 0 || out.Bridges != 0 {
		t.Fatalf("fleet winner needed %d swaps / %d bridges, want 0", out.Swaps, out.Bridges)
	}

	// Query form.
	resp2, qout := postQASM(t, ts.URL+"/compile?fleet=line:6,full:6", src)
	if resp2.StatusCode != http.StatusOK || qout.Fleet == nil || qout.Fleet.Device != out.Fleet.Device {
		t.Fatalf("query-form fleet: status %d fleet %+v, want same winner as JSON form", resp2.StatusCode, qout.Fleet)
	}

	// Contradictory request: named device AND a fleet.
	resp3, _ := postQASM(t, ts.URL+"/compile?device=tokyo&fleet=line:6", src)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("device+fleet: status %d, want 400", resp3.StatusCode)
	}

	// Unknown candidate in the fleet.
	resp4, _ := postQASM(t, ts.URL+"/compile?fleet=line:6,warp-core", src)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown fleet member: status %d, want 400", resp4.StatusCode)
	}
}

// TestFleetJob: async submissions carry the scheduling decision in
// every /jobs view, and the job compiles on the winner.
func TestFleetJob(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(5))

	resp, job := postJobJSON(t, ts.URL+"/jobs", compileRequest{QASM: src, Fleet: []string{"line:5", "full:5"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if job.Fleet == nil || len(job.Fleet.Scores) != 2 {
		t.Fatalf("queued job fleet = %+v, want a 2-row decision", job.Fleet)
	}

	deadline := time.Now().Add(30 * time.Second)
	var done jobResponse
	for {
		done = pollJob(t, ts.URL, job.ID)
		if done.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done.Fleet == nil || done.Fleet.Device != job.Fleet.Device {
		t.Fatalf("done job fleet %+v, want the decision from submit (%+v)", done.Fleet, job.Fleet)
	}
	if done.Result == nil || done.Result.Device != done.Fleet.Device {
		t.Fatalf("job compiled on %+v, want fleet winner %q", done.Result, done.Fleet.Device)
	}
	if done.Result.Fleet == nil || done.Result.Fleet.Device != done.Fleet.Device {
		t.Fatalf("result fleet %+v, want the same decision", done.Result.Fleet)
	}
}
