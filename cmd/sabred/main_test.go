package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/jobqueue"
	"repro/internal/qasm"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	eng := batch.NewEngine(batch.Config{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := newServer(eng, jobqueue.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.queue.Close(ctx)
	})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, srv
}

func postQASM(t *testing.T, url, body string) (*http.Response, compileResponse) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out compileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestCompileEndpoint(t *testing.T) {
	ts, srv := newTestServer(t)
	src := qasm.Format(workloads.QFT(6))

	resp, out := postQASM(t, ts.URL+"/compile?device=tokyo&seed=3", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Device != "ibmq20-tokyo" && !strings.Contains(strings.ToLower(out.Device), "tokyo") {
		t.Fatalf("device = %q", out.Device)
	}
	if out.DeviceQubits != 20 {
		t.Fatalf("device_qubits = %d", out.DeviceQubits)
	}
	if out.AddedGates != 3*(out.Swaps+out.Bridges) {
		t.Fatalf("added_gates %d != 3*(%d+%d)", out.AddedGates, out.Swaps, out.Bridges)
	}
	if out.CacheHit {
		t.Fatal("first compile was a cache hit")
	}

	// The returned QASM must parse and be hardware-compliant.
	routed, err := qasm.Parse(out.QASM)
	if err != nil {
		t.Fatalf("returned QASM does not parse: %v", err)
	}
	dev, err := srv.device("tokyo")
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.HardwareCompliant(routed.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatalf("returned circuit not compliant: %v", err)
	}

	// Same request again: served from the cache, identical output.
	resp2, out2 := postQASM(t, ts.URL+"/compile?device=tokyo&seed=3", src)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Fatal("identical request missed the cache")
	}
	if out2.QASM != out.QASM || out2.Key != out.Key {
		t.Fatal("cache hit returned different output")
	}
}

func TestCompileJSONEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := json.Marshal(compileRequest{
		QASM:    qasm.Format(workloads.GHZ(5)),
		Device:  "line:6",
		Options: optionsRequest{Trials: 2, Seed: 9, Heuristic: "lookahead"},
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(string(req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out compileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.DeviceQubits != 6 {
		t.Fatalf("device_qubits = %d, want 6", out.DeviceQubits)
	}
}

func TestCompileErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	// Unknown device.
	resp, _ := postQASM(t, ts.URL+"/compile?device=nope", "OPENQASM 2.0;\nqreg q[2];\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d", resp.StatusCode)
	}

	// Malformed QASM.
	resp, _ = postQASM(t, ts.URL+"/compile?device=tokyo", "this is not qasm")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad QASM: status %d", resp.StatusCode)
	}

	// Circuit wider than the device.
	resp, _ = postQASM(t, ts.URL+"/compile?device=line:3", qasm.Format(workloads.QFT(8)))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized circuit: status %d", resp.StatusCode)
	}

	// GET on /compile.
	getResp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status %d", getResp.StatusCode)
	}
}

func TestAuxEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)

	for _, path := range []string{"/healthz", "/devices", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// Stats reflect traffic.
	postQASM(t, ts.URL+"/compile?device=tokyo", qasm.Format(workloads.GHZ(4)))
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["jobs"].(float64) < 1 {
		t.Fatalf("stats.jobs = %v", st["jobs"])
	}
}

func TestBuildDevice(t *testing.T) {
	cases := map[string]int{
		"tokyo": 20, "qx5": 16, "falcon27": 27,
		"line:7": 7, "ring:5": 5, "star:4": 4, "full:3": 3,
		"grid:3x4": 12, "sycamore:3x3": 9, "aspen:2": 16,
	}
	for spec, n := range cases {
		d, err := buildDevice(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if d.NumQubits() != n {
			t.Fatalf("%s: %d qubits, want %d", spec, d.NumQubits(), n)
		}
	}
	for _, spec := range []string{"", "nope", "line:x", "grid:3", "grid:0x4", "ring:2", "line:99999"} {
		if _, err := buildDevice(spec); err == nil {
			t.Fatalf("%s: accepted", spec)
		}
	}
}
