package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/qasm"
	"repro/internal/workloads"
)

const tinyQASM = "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[1];\ncx q[0],q[2];\n"

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestCompileRejectsInvalidParams covers every client-error rejection
// path: invalid trials, passes, and route values must produce 400 (the
// client's fault), never 500/422, in both the JSON envelope and the
// query-parameter form.
func TestCompileRejectsInvalidParams(t *testing.T) {
	ts, _ := newTestServer(t)

	jsonCases := map[string]string{
		"negative trials":          `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "trials": -1}`,
		"negative options.trials":  `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "options": {"trials": -4}}`,
		"oversized trials":         `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "trials": 1000000000}`,
		"oversized options.trials": `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "options": {"trials": 20000}}`,
		"non-post-routing pass":    `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "passes": ["layout"]}`,
		"unknown pass":             `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "passes": ["polish"]}`,
		"unknown route":            `{"qasm": "` + escaped(tinyQASM) + `", "device": "line:3", "route": "warp-drive"}`,
	}
	for name, body := range jsonCases {
		if resp := postJSON(t, ts.URL+"/compile", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("JSON %s: status %d, want 400", name, resp.StatusCode)
		}
	}

	queryCases := map[string]string{
		"non-numeric trials":    "?device=line:3&trials=many",
		"zero trials":           "?device=line:3&trials=0",
		"negative trials":       "?device=line:3&trials=-2",
		"oversized trials":      "?device=line:3&trials=1000000000",
		"non-post-routing pass": "?device=line:3&passes=layout",
		"unknown pass":          "?device=line:3&passes=polish",
		"unknown route":         "?device=line:3&route=warp-drive",
	}
	for name, query := range queryCases {
		resp, _ := postQASM(t, ts.URL+"/compile"+query, tinyQASM)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestCompileAcceptsRegistryRouters drives one compile per registered
// backend spelling through both request forms.
func TestCompileAcceptsRegistryRouters(t *testing.T) {
	ts, _ := newTestServer(t)
	src := qasm.Format(workloads.GHZ(5))

	for _, name := range []string{"sabre", "greedy", "astar", "anneal", "tokenswap", "bka"} {
		resp, out := postQASM(t, ts.URL+"/compile?device=tokyo&route="+name, src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query route=%s: status %d", name, resp.StatusCode)
		}
		if out.QASM == "" {
			t.Fatalf("query route=%s: empty QASM", name)
		}
	}

	body := `{"qasm": "` + escaped(qasm.Format(workloads.GHZ(4))) + `", "device": "line:5", "route": "tokenswap"}`
	if resp := postJSON(t, ts.URL+"/compile", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON route=tokenswap: status %d", resp.StatusCode)
	}
}

// escaped turns raw QASM into a JSON string body fragment (without
// the surrounding quotes, which the call sites supply).
func escaped(s string) string {
	b, _ := json.Marshal(s)
	return strings.Trim(string(b), `"`)
}
