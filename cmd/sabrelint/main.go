// Command sabrelint is the repo's multichecker: one entrypoint that
// proves the determinism, zero-alloc, and snapshot invariants at
// compile time and folds the stock toolchain checks under the same
// exit code. `sabrelint ./...` runs
//
//  1. the five sabre analyzers (detrange, hotalloc, seedrand,
//     calatomic, keyfields — see internal/analysis), each scoped to
//     the packages whose invariants it proves;
//  2. `go vet` over the same patterns;
//  3. staticcheck, when the pinned binary is on PATH (CI installs
//     honnef.co/go/tools/cmd/staticcheck@2025.1; locally the step is
//     skipped with a notice so a bare toolchain still lints).
//
// Any diagnostic from any stage fails the run. -json FILE
// additionally writes a machine-readable report (uploaded as a CI
// artifact), and -only narrows to a comma-separated analyzer subset.
//
// Findings are suppressed in place with source directives — see
// internal/analysis/lint for //sabre:nondeterm-ok, //sabre:alloc-ok,
// //sabre:nokey, and the //sabre:hotpath marker that opts a function
// into hotalloc.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

type report struct {
	Patterns    []string          `json:"patterns"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	Vet         *toolResult       `json:"vet,omitempty"`
	Staticcheck *toolResult       `json:"staticcheck,omitempty"`
}

type toolResult struct {
	Ran    bool   `json:"ran"`
	Passed bool   `json:"passed"`
	Output string `json:"output,omitempty"`
	Note   string `json:"note,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sabrelint", flag.ExitOnError)
	jsonPath := fs.String("json", "", "write a machine-readable report to this `file`")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	noVet := fs.Bool("novet", false, "skip the go vet stage")
	noStaticcheck := fs.Bool("nostaticcheck", false, "skip the staticcheck stage")
	dir := fs.String("C", ".", "run as if launched from `dir`")
	fs.Parse(args)

	suite := analysis.All()
	if *list {
		for _, c := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		filtered := suite[:0]
		for _, c := range suite {
			if keep[c.Analyzer.Name] {
				delete(keep, c.Analyzer.Name)
				filtered = append(filtered, c)
			}
		}
		if len(keep) > 0 {
			fmt.Fprintf(stderr, "sabrelint: unknown analyzer(s) in -only: %s\n", strings.Join(mapKeysSorted(keep), ", "))
			return 2
		}
		suite = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sabrelint: %v\n", err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, c := range suite {
			if !c.Applies(pkg.ImportPath) {
				continue
			}
			found, err := lint.RunAnalyzer(c.Analyzer, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "sabrelint: %v\n", err)
				return 2
			}
			diags = append(diags, found...)
		}
	}
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}

	rep := report{Patterns: patterns, Diagnostics: diags}
	failed := len(diags) > 0

	if !*noVet {
		rep.Vet = runTool(stdout, *dir, "go", append([]string{"vet", "--"}, patterns...)...)
		failed = failed || !rep.Vet.Passed
	}
	if !*noStaticcheck {
		if _, err := exec.LookPath("staticcheck"); err != nil {
			rep.Staticcheck = &toolResult{Ran: false, Passed: true,
				Note: "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"}
			fmt.Fprintf(stdout, "sabrelint: %s\n", rep.Staticcheck.Note)
		} else {
			rep.Staticcheck = runTool(stdout, *dir, "staticcheck", patterns...)
			failed = failed || !rep.Staticcheck.Passed
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sabrelint: writing %s: %v\n", *jsonPath, err)
			return 2
		}
	}

	if failed {
		fmt.Fprintf(stderr, "sabrelint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	fmt.Fprintf(stdout, "sabrelint: ok (%d packages, %d analyzers)\n", len(pkgs), len(suite))
	return 0
}

// runTool shells out to a toolchain check, streaming its (combined)
// output through ours; a nonzero exit is a failed stage.
func runTool(stdout *os.File, dir, name string, args ...string) *toolResult {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if len(out) > 0 {
		stdout.Write(out)
	}
	return &toolResult{Ran: true, Passed: err == nil, Output: string(out)}
}

func mapKeysSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//sabre:nondeterm-ok sorted below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
