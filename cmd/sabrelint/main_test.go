package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/lint"
)

// capture gives run() a real *os.File to write to and hands the
// contents back.
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "sabrelint-out-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

// TestSeededViolationsFail is the end-to-end proof the suite demands:
// running the real driver over testdata/src/broken — one deliberate
// violation per analyzer — must exit nonzero with every analyzer
// represented, which is exactly what the CI lint gate relies on.
func TestSeededViolationsFail(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	stdout, _ := capture(t)
	stderr, errOut := capture(t)

	code := run([]string{"-novet", "-nostaticcheck", "-json", jsonPath, "./testdata/src/broken"}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit code %d over the seeded-violation package, want 1 (stderr: %s)", code, errOut())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json wrote invalid JSON: %v", err)
	}

	byAnalyzer := map[string]int{}
	for _, d := range rep.Diagnostics {
		byAnalyzer[d.Analyzer]++
	}
	for _, name := range []string{"detrange", "hotalloc", "seedrand", "calatomic", "keyfields"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("analyzer %s did not fire on its seeded violation (got %v)", name, byAnalyzer)
		}
	}
	if got := len(rep.Diagnostics); got != 6 {
		t.Errorf("%d diagnostics over the seeded package, want 6: %+v", got, rep.Diagnostics)
	}

	// The report must be self-describing enough to act on: every
	// diagnostic carries a position inside the fixture.
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line <= 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
}

// TestCleanPackagePasses: the green path exits 0.
func TestCleanPackagePasses(t *testing.T) {
	stdout, out := capture(t)
	stderr, errOut := capture(t)
	if code := run([]string{"-novet", "-nostaticcheck", "./testdata/src/clean"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code %d over the clean package, want 0\nstdout: %s\nstderr: %s", code, out(), errOut())
	}
}

// TestOnlyUnknownAnalyzer: a typo in -only is an internal error (2),
// not a silent no-op.
func TestOnlyUnknownAnalyzer(t *testing.T) {
	stdout, _ := capture(t)
	stderr, errOut := capture(t)
	if code := run([]string{"-only", "detrange,nosuch", "./testdata/src/clean"}, stdout, stderr); code != 2 {
		t.Fatalf("exit code %d for unknown -only analyzer, want 2 (stderr: %s)", code, errOut())
	}
}

// TestOnlySubset: -only narrows the suite — the broken package's
// seedrand findings are the only ones reported.
func TestOnlySubset(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	stdout, _ := capture(t)
	stderr, errOut := capture(t)
	if code := run([]string{"-novet", "-nostaticcheck", "-only", "seedrand", "-json", jsonPath, "./testdata/src/broken"}, stdout, stderr); code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("%d diagnostics with -only seedrand, want 2: %+v", len(rep.Diagnostics), rep.Diagnostics)
	}
	for _, d := range rep.Diagnostics {
		if d.Analyzer != "seedrand" {
			t.Fatalf("-only seedrand leaked a %s diagnostic: %+v", d.Analyzer, d)
		}
	}
}
