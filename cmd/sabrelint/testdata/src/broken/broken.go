// Package broken seeds one violation per sabrelint analyzer. The
// driver's integration test runs the real multichecker over this
// package and asserts every analyzer fires — the end-to-end proof
// that a freshly introduced violation fails CI.
package broken

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arch"
)

// Job mirrors batch.Job in miniature; Knob deliberately never reaches
// KeyOf and carries no annotation, so keyfields must object.
type Job struct {
	Circuit string
	Knob    int
}

// KeyOf forgets Knob.
func KeyOf(job Job) string { return job.Circuit }

type parked struct {
	snap *arch.CalSnapshot
}

// Park caches a calibration snapshot in a field: calatomic bait.
func Park(p *parked, d *arch.Device) {
	p.snap = d.Calibration()
}

// Names leaks map iteration order into its output: detrange bait.
func Names(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Hot allocates on an annotated hot path: hotalloc bait.
//
//sabre:hotpath
func Hot(n int) string {
	return fmt.Sprintf("%d", n)
}

// Jitter consults the wall clock and the global RNG: seedrand bait,
// twice over.
func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(3))
}
