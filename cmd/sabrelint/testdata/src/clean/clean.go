// Package clean is the green-path fixture: code that obeys every
// sabrelint invariant, so the driver must exit 0 on it.
package clean

import "sort"

// SortedKeys drains a map deterministically.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//sabre:nondeterm-ok keys collected then sorted below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
